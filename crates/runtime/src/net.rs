//! CI-hardened TCP listener setup.
//!
//! Loopback listeners are bound all over this workspace — the `tcp`
//! backend opens one per host, the resharding daemon opens one per
//! server, and the test suite opens dozens per run. Under CI parallelism
//! a bind can transiently fail (`EADDRINUSE` from a socket lingering in
//! `TIME_WAIT`, or exhausted ephemeral ports while another test tears
//! down), and an accept loop blocked in `accept()` can outlive the run
//! that spawned it. Two pieces fix both flake classes at the source:
//!
//! * [`bind_retry`] — bind with bounded exponential backoff on the
//!   transient error kinds, so a momentarily busy port never fails a run;
//! * [`PollListener`] — a non-blocking accept loop with an explicit
//!   wall-clock tick, so the owner can stop accepting on a shutdown flag
//!   instead of sitting in `accept()` forever; dropping it closes the
//!   socket immediately (nothing keeps a cloned handle), which releases
//!   the port for the next test.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// Error kinds worth retrying at bind time: the port (or the ephemeral
/// range) is busy *now* but will not stay busy.
fn bind_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::AddrInUse | io::ErrorKind::AddrNotAvailable | io::ErrorKind::WouldBlock
    )
}

/// Binds `addr`, retrying transient failures (`EADDRINUSE`,
/// `EADDRNOTAVAIL`) up to `attempts` times with doubling backoff starting
/// at `backoff`. The last error is returned if every attempt fails;
/// non-transient errors (permission, bad address) fail immediately.
///
/// # Errors
///
/// Propagates the underlying bind error once retries are exhausted or the
/// error is not transient.
pub fn bind_retry<A: ToSocketAddrs + Copy>(
    addr: A,
    attempts: u32,
    backoff: Duration,
) -> io::Result<TcpListener> {
    let mut delay = backoff;
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..attempts.max(1) {
        match TcpListener::bind(addr) {
            Ok(l) => return Ok(l),
            Err(e) if bind_transient(e.kind()) && attempt + 1 < attempts.max(1) => {
                last_err = Some(e);
                thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::AddrInUse, "bind retries exhausted")))
}

/// Binds an ephemeral loopback port (`127.0.0.1:0`) with the default
/// retry policy. Ephemeral binds only fail when the kernel's local port
/// range is momentarily exhausted, so a short backoff is always enough.
///
/// # Errors
///
/// Propagates the underlying bind error once retries are exhausted.
pub fn bind_ephemeral() -> io::Result<TcpListener> {
    bind_retry("127.0.0.1:0", 8, Duration::from_millis(10))
}

/// A listener whose accept loop can be stopped: `accept` is non-blocking
/// under the hood and polls on a fixed tick, so the caller re-checks its
/// shutdown flag between ticks instead of blocking in the kernel.
/// Dropping the value closes the socket and releases the port.
#[derive(Debug)]
pub struct PollListener {
    listener: TcpListener,
    tick: Duration,
}

impl PollListener {
    /// Wraps a bound listener, switching it to non-blocking mode. `tick`
    /// is the poll interval (and the upper bound on shutdown latency).
    ///
    /// # Errors
    ///
    /// Propagates the `set_nonblocking` error.
    pub fn new(listener: TcpListener, tick: Duration) -> io::Result<PollListener> {
        listener.set_nonblocking(true)?;
        Ok(PollListener { listener, tick })
    }

    /// Binds an ephemeral loopback port (with retry) and wraps it with a
    /// default 20 ms tick.
    ///
    /// # Errors
    ///
    /// Propagates bind or `set_nonblocking` errors.
    pub fn bind_ephemeral() -> io::Result<PollListener> {
        PollListener::new(bind_ephemeral()?, Duration::from_millis(20))
    }

    /// The bound local address (port is concrete even for ephemeral binds).
    ///
    /// # Errors
    ///
    /// Propagates the `local_addr` error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Polls for one incoming connection for up to `timeout`: returns
    /// `Ok(Some(..))` on a connection, `Ok(None)` if the timeout elapsed
    /// with nothing pending (check your shutdown flag and call again).
    /// The accepted stream is switched back to blocking mode.
    ///
    /// # Errors
    ///
    /// Propagates non-transient accept errors.
    pub fn accept_timeout(&self, timeout: Duration) -> io::Result<Option<(TcpStream, SocketAddr)>> {
        let mut waited = Duration::ZERO;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    stream.set_nonblocking(false)?;
                    return Ok(Some((stream, peer)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if waited >= timeout {
                        return Ok(None);
                    }
                    let step = self.tick.min(timeout - waited);
                    thread::sleep(step);
                    waited += step;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Per-connection failures (peer reset mid-handshake) are
                // not listener failures; keep accepting.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ephemeral_bind_succeeds_and_reports_a_port() {
        let l = bind_ephemeral().unwrap();
        assert_ne!(l.local_addr().unwrap().port(), 0);
    }

    #[test]
    fn bind_retry_eventually_gets_a_busy_port() {
        // Occupy a concrete port, then race a retrying bind against its
        // release from another thread.
        let holder = bind_ephemeral().unwrap();
        let addr = holder.local_addr().unwrap();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            drop(holder);
        });
        let rebound = bind_retry(addr, 10, Duration::from_millis(10)).unwrap();
        assert_eq!(rebound.local_addr().unwrap().port(), addr.port());
        t.join().unwrap();
    }

    #[test]
    fn bind_retry_gives_up_on_a_port_that_stays_busy() {
        let holder = bind_ephemeral().unwrap();
        let addr = holder.local_addr().unwrap();
        let err = bind_retry(addr, 2, Duration::from_millis(1)).unwrap_err();
        assert!(bind_transient(err.kind()), "{err}");
    }

    #[test]
    fn accept_timeout_returns_none_without_a_connection() {
        let l = PollListener::bind_ephemeral().unwrap();
        let got = l.accept_timeout(Duration::from_millis(5)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn accept_timeout_accepts_a_pending_connection() {
        let l = PollListener::bind_ephemeral().unwrap();
        let addr = l.local_addr().unwrap();
        let client = thread::spawn(move || TcpStream::connect(addr).unwrap());
        let mut got = None;
        for _ in 0..100 {
            got = l.accept_timeout(Duration::from_millis(20)).unwrap();
            if got.is_some() {
                break;
            }
        }
        let (stream, _) = got.expect("connection accepted");
        // Accepted streams come back in blocking mode.
        assert!(stream.peer_addr().is_ok());
        client.join().unwrap();
    }

    #[test]
    fn dropping_the_listener_releases_the_port() {
        let l = PollListener::bind_ephemeral().unwrap();
        let addr = l.local_addr().unwrap();
        drop(l);
        // The port is free again (possibly after a tick on slow kernels).
        let rebound = bind_retry(addr, 10, Duration::from_millis(10)).unwrap();
        assert_eq!(rebound.local_addr().unwrap().port(), addr.port());
    }
}
