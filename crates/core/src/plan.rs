//! Plans: sender-assigned, ordered unit tasks, with estimation, lowering,
//! and simulated execution.

use crate::task::ReshardingTask;
use crossmesh_collectives::{
    estimate_unit_task, lower_unit_task, CostParams, LoweredComm, Strategy,
};
use crossmesh_netsim::{
    Backend, ClusterSpec, DeviceId, HostId, SimBackend, SimError, TaskGraph, TaskId, Work,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One scheduled unit task: which replica sends, and with what strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Index into [`ReshardingTask::units`].
    pub unit: usize,
    /// The chosen sender device (one of the unit task's replicas).
    pub sender: DeviceId,
    /// Host of `sender`.
    pub sender_host: HostId,
    /// Communication strategy for this unit task.
    pub strategy: Strategy,
}

/// The lowered form of a plan inside a larger task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredPlan {
    /// Lowered fragments per scheduled assignment (plan order).
    pub per_unit: Vec<LoweredComm>,
    /// Joins the whole resharding task.
    pub done: TaskId,
}

/// Result of executing a plan on the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Completion time of the last unit task, simulated seconds.
    pub simulated_seconds: f64,
    /// Bytes that crossed host NICs.
    pub cross_host_bytes: f64,
    /// Number of simulator tasks the plan lowered to.
    pub tasks_lowered: usize,
}

/// A complete solution of the §3.2 optimization problem: an ordered list of
/// sender-assigned unit tasks. Ordering is the schedule: on every host,
/// tasks execute in plan order (tasks sharing no host proceed in parallel).
#[derive(Debug, Clone, PartialEq)]
pub struct Plan<'t> {
    task: &'t ReshardingTask,
    assignments: Vec<Assignment>,
    params: CostParams,
}

impl<'t> Plan<'t> {
    /// Builds a plan from an ordered assignment list.
    ///
    /// # Panics
    ///
    /// Panics if the assignments do not cover every unit task exactly once,
    /// or a sender is not a replica of its unit task.
    pub fn new(task: &'t ReshardingTask, assignments: Vec<Assignment>, params: CostParams) -> Self {
        let mut seen = vec![false; task.units().len()];
        for a in &assignments {
            assert!(
                a.unit < task.units().len(),
                "assignment references unit {} of {}",
                a.unit,
                task.units().len()
            );
            assert!(!seen[a.unit], "unit {} scheduled twice", a.unit);
            seen[a.unit] = true;
            let unit = &task.units()[a.unit];
            assert!(
                unit.senders
                    .iter()
                    .any(|&(d, h)| d == a.sender && h == a.sender_host),
                "sender {} is not a replica holder of unit {}",
                a.sender,
                a.unit
            );
        }
        assert!(
            seen.iter().all(|&s| s),
            "plan must schedule every unit task"
        );
        Plan {
            task,
            assignments,
            params,
        }
    }

    /// The underlying resharding task.
    pub fn task(&self) -> &'t ReshardingTask {
        self.task
    }

    /// The ordered assignments.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// The cost parameters used for estimation.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Analytic makespan of the plan: a list schedule where each unit task
    /// starts once the sender host and all receiver hosts are free, and
    /// occupies them for its estimated duration.
    pub fn estimate(&self) -> f64 {
        let mut cursor: BTreeMap<HostId, f64> = BTreeMap::new();
        let mut makespan = 0.0f64;
        for a in &self.assignments {
            let unit = &self.task.units()[a.unit];
            let duration = estimate_unit_task(&self.params, unit, a.sender_host, a.strategy);
            let hosts = involved_hosts(unit, a.sender_host);
            let start = hosts
                .iter()
                .map(|h| cursor.get(h).copied().unwrap_or(0.0))
                .fold(0.0, f64::max);
            let finish = start + duration;
            for h in hosts {
                cursor.insert(h, finish);
            }
            makespan = makespan.max(finish);
        }
        makespan
    }

    /// A lower bound on any schedule's makespan, from pure bandwidth
    /// arguments: each receiver host's NIC must absorb every slice that no
    /// source replica can deliver locally, and every unit task needs at
    /// least its own transfer time.
    pub fn lower_bound(&self) -> f64 {
        let mut recv_load: BTreeMap<HostId, f64> = BTreeMap::new();
        let mut longest = 0.0f64;
        for a in &self.assignments {
            let unit = &self.task.units()[a.unit];
            let bytes = unit.bytes as f64;
            let sender_hosts = unit.sender_hosts();
            // Best-case transfer time of this unit in isolation.
            let all_local = unit
                .receiver_hosts()
                .iter()
                .all(|h| sender_hosts.contains(h));
            let best = if all_local {
                bytes / self.params.intra_bw
            } else {
                bytes / self.params.inter_bw
            };
            longest = longest.max(best);
            for h in unit.receiver_hosts() {
                if !sender_hosts.contains(&h) {
                    *recv_load.entry(h).or_insert(0.0) += bytes / self.params.inter_bw;
                }
            }
        }
        recv_load.values().copied().fold(0.0, f64::max).max(longest)
    }

    /// Lowers the plan into `graph`. Host-level serialization is enforced
    /// with dependency chains: each unit task waits for the previous task
    /// (in plan order) on each host it touches.
    pub fn lower(&self, graph: &mut TaskGraph, deps: &[TaskId]) -> LoweredPlan {
        let mut last_on_host: BTreeMap<HostId, TaskId> = BTreeMap::new();
        let mut per_unit = Vec::with_capacity(self.assignments.len());
        for a in &self.assignments {
            let unit = &self.task.units()[a.unit];
            let hosts = involved_hosts(unit, a.sender_host);
            let mut unit_deps: Vec<TaskId> = deps.to_vec();
            for h in &hosts {
                if let Some(&m) = last_on_host.get(h) {
                    unit_deps.push(m);
                }
            }
            let lowered = lower_unit_task(graph, unit, a.sender, a.strategy, &unit_deps);
            for h in hosts {
                last_on_host.insert(h, lowered.done);
            }
            per_unit.push(lowered);
        }
        let done = graph.add(Work::Marker, per_unit.iter().map(|l| l.done));
        LoweredPlan { per_unit, done }
    }

    /// Executes the plan alone on `cluster` with the simulator backend and
    /// reports the simulated completion time.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (e.g. the plan references devices not in
    /// `cluster`).
    pub fn execute(&self, cluster: &ClusterSpec) -> Result<ExecutionReport, SimError> {
        self.execute_with(&SimBackend, cluster)
    }

    /// Executes the plan alone on `cluster` through an arbitrary
    /// [`Backend`] — the flow-level simulator, or a real execution backend
    /// such as the threaded runtime. `simulated_seconds` then reports
    /// whatever clock the backend uses (wall seconds for real backends).
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn execute_with(
        &self,
        backend: &dyn Backend,
        cluster: &ClusterSpec,
    ) -> Result<ExecutionReport, SimError> {
        let mut graph = TaskGraph::new();
        let lowered = self.lower(&mut graph, &[]);
        let trace = backend.execute(cluster, &graph)?;
        Ok(ExecutionReport {
            simulated_seconds: trace.interval(lowered.done).finish,
            cross_host_bytes: trace.usage().total_cross_host_bytes(),
            tasks_lowered: graph.len(),
        })
    }
}

/// The hosts a unit task occupies while executing: its sender host plus all
/// receiver hosts.
pub(crate) fn involved_hosts(unit: &crossmesh_mesh::UnitTask, sender_host: HostId) -> Vec<HostId> {
    let mut hosts = unit.receiver_hosts();
    if let Err(pos) = hosts.binary_search(&sender_host) {
        hosts.insert(pos, sender_host);
    }
    hosts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_mesh::DeviceMesh;
    use crossmesh_netsim::{Engine, LinkParams};

    fn setup() -> (ClusterSpec, ReshardingTask) {
        let c =
            ClusterSpec::homogeneous(4, 2, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0));
        let a = DeviceMesh::from_cluster(&c, 0, (2, 2), "A").unwrap();
        let b = DeviceMesh::from_cluster(&c, 2, (2, 2), "B").unwrap();
        let t = ReshardingTask::new(
            a,
            "S0R".parse().unwrap(),
            b,
            "S0R".parse().unwrap(),
            &[8, 8],
            1,
        )
        .unwrap();
        (c, t)
    }

    fn params() -> CostParams {
        CostParams {
            inter_bw: 1.0,
            intra_bw: 100.0,
            inter_latency: 0.0,
            intra_latency: 0.0,
        }
    }

    fn plan_for(task: &ReshardingTask) -> Plan<'_> {
        let assignments = task
            .units()
            .iter()
            .enumerate()
            .map(|(i, u)| Assignment {
                unit: i,
                sender: u.senders[0].0,
                sender_host: u.senders[0].1,
                strategy: Strategy::broadcast(),
            })
            .collect();
        Plan::new(task, assignments, params())
    }

    #[test]
    fn execute_reports_cross_host_traffic() {
        let (c, t) = setup();
        let plan = plan_for(&t);
        let report = plan.execute(&c).unwrap();
        // Two 32-byte halves, each broadcast to one remote host once.
        assert!((report.cross_host_bytes - 64.0).abs() < 1e-6);
        assert!(report.simulated_seconds > 0.0);
    }

    #[test]
    fn estimate_is_close_to_simulation_for_disjoint_tasks() {
        let (c, t) = setup();
        let plan = plan_for(&t);
        let est = plan.estimate();
        let sim = plan.execute(&c).unwrap().simulated_seconds;
        let rel = (est - sim).abs() / sim;
        assert!(rel < 0.2, "estimate {est} vs simulated {sim}");
    }

    #[test]
    fn lower_bound_holds() {
        let (c, t) = setup();
        let plan = plan_for(&t);
        let sim = plan.execute(&c).unwrap().simulated_seconds;
        assert!(plan.lower_bound() <= sim + 1e-9);
        assert!(plan.lower_bound() <= plan.estimate() + 1e-9);
    }

    #[test]
    fn conflicting_tasks_serialize() {
        // Force both units through the same sender host; they must not
        // overlap there.
        let (c, t) = setup();
        // Unit replicas: S0R on 2x2 mesh -> each slice held by one row
        // (2 devices on one host each, since rows are hosts).
        let assignments: Vec<Assignment> = t
            .units()
            .iter()
            .enumerate()
            .map(|(i, u)| Assignment {
                unit: i,
                sender: u.senders[0].0,
                sender_host: u.senders[0].1,
                strategy: Strategy::SendRecv,
            })
            .collect();
        let plan = Plan::new(&t, assignments, params());
        let mut graph = TaskGraph::new();
        let lowered = plan.lower(&mut graph, &[]);
        let trace = Engine::new(&c).run(&graph).unwrap();
        // Receiver hosts are disjoint (unit 0 -> host 2, unit 1 -> host 3)
        // and senders are distinct hosts, so they CAN overlap.
        let i0 = trace.interval(lowered.per_unit[0].done);
        let i1 = trace.interval(lowered.per_unit[1].done);
        assert!(i0.overlaps(&i1) || i0.finish <= i1.start || i1.finish <= i0.start);
        assert!(trace.interval(lowered.done).finish > 0.0);
    }

    #[test]
    #[should_panic(expected = "every unit task")]
    fn incomplete_plan_panics() {
        let (_, t) = setup();
        Plan::new(&t, vec![], params());
    }

    #[test]
    #[should_panic(expected = "not a replica holder")]
    fn bad_sender_panics() {
        let (c, t) = setup();
        let assignments = vec![
            Assignment {
                unit: 0,
                sender: c.device(3, 0),
                sender_host: HostId(3),
                strategy: Strategy::SendRecv,
            },
            Assignment {
                unit: 1,
                sender: t.units()[1].senders[0].0,
                sender_host: t.units()[1].senders[0].1,
                strategy: Strategy::SendRecv,
            },
        ];
        Plan::new(&t, assignments, params());
    }

    #[test]
    fn involved_hosts_includes_sender_once() {
        let (_, t) = setup();
        let u = &t.units()[0];
        let hosts = involved_hosts(u, u.senders[0].1);
        let mut dedup = hosts.clone();
        dedup.dedup();
        assert_eq!(hosts, dedup);
        assert!(hosts.contains(&u.senders[0].1));
    }
}
