//! Plans: sender-assigned, ordered unit tasks, with estimation, lowering,
//! and simulated execution.

use crate::exclusions::{RepairError, SenderExclusions};
use crate::planners::{plan_with_exclusions, replica_on, EnsemblePlanner, PlannerConfig};
use crate::task::ReshardingTask;
use crossmesh_collectives::{
    estimate_unit_task, lower_unit_task_on, CostParams, LoweredComm, Strategy,
};
use crossmesh_netsim::{
    Backend, ClusterSpec, DeviceId, HostId, SimBackend, SimError, TaskGraph, TaskId, Work,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One scheduled unit task: which replica sends, and with what strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assignment {
    /// Index into [`ReshardingTask::units`].
    pub unit: usize,
    /// The chosen sender device (one of the unit task's replicas).
    pub sender: DeviceId,
    /// Host of `sender`.
    pub sender_host: HostId,
    /// Communication strategy for this unit task.
    pub strategy: Strategy,
}

impl Assignment {
    /// This assignment as the checker's dependency-free mirror type.
    pub fn as_view(&self) -> crossmesh_check::verify::AssignmentView {
        crossmesh_check::verify::AssignmentView {
            unit: self.unit,
            sender: self.sender,
            sender_host: self.sender_host,
            strategy: self.strategy,
        }
    }
}

/// The lowered form of a plan inside a larger task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredPlan {
    /// Lowered fragments per scheduled assignment (plan order).
    pub per_unit: Vec<LoweredComm>,
    /// Joins the whole resharding task.
    pub done: TaskId,
}

/// Result of executing a plan on the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Completion time of the last unit task, simulated seconds.
    pub simulated_seconds: f64,
    /// Bytes that crossed host NICs.
    pub cross_host_bytes: f64,
    /// Number of simulator tasks the plan lowered to.
    pub tasks_lowered: usize,
}

/// A complete solution of the §3.2 optimization problem: an ordered list of
/// sender-assigned unit tasks. Ordering is the schedule: on every host,
/// tasks execute in plan order (tasks sharing no host proceed in parallel).
#[derive(Debug, Clone, PartialEq)]
pub struct Plan<'t> {
    task: &'t ReshardingTask,
    assignments: Vec<Assignment>,
    params: CostParams,
}

impl<'t> Plan<'t> {
    /// Builds a plan from an ordered assignment list.
    ///
    /// # Panics
    ///
    /// Panics if the assignments do not cover every unit task exactly once,
    /// or a sender is not a replica of its unit task.
    pub fn new(task: &'t ReshardingTask, assignments: Vec<Assignment>, params: CostParams) -> Self {
        let mut seen = vec![false; task.units().len()];
        for a in &assignments {
            assert!(
                a.unit < task.units().len(),
                "assignment references unit {} of {}",
                a.unit,
                task.units().len()
            );
            assert!(!seen[a.unit], "unit {} scheduled twice", a.unit);
            seen[a.unit] = true;
            let unit = &task.units()[a.unit];
            assert!(
                unit.senders
                    .iter()
                    .any(|&(d, h)| d == a.sender && h == a.sender_host),
                "sender {} is not a replica holder of unit {}",
                a.sender,
                a.unit
            );
        }
        assert!(
            seen.iter().all(|&s| s),
            "plan must schedule every unit task"
        );
        Plan {
            task,
            assignments,
            params,
        }
    }

    /// The underlying resharding task.
    pub fn task(&self) -> &'t ReshardingTask {
        self.task
    }

    /// The ordered assignments.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// The cost parameters used for estimation.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Analytic makespan of the plan: a list schedule where each unit task
    /// starts once the sender host and all receiver hosts are free, and
    /// occupies them for its estimated duration.
    pub fn estimate(&self) -> f64 {
        let mut cursor: BTreeMap<HostId, f64> = BTreeMap::new();
        let mut makespan = 0.0f64;
        for a in &self.assignments {
            let unit = &self.task.units()[a.unit];
            let duration = estimate_unit_task(&self.params, unit, a.sender_host, a.strategy);
            let hosts = involved_hosts(unit, a.sender_host);
            let start = hosts
                .iter()
                .map(|h| cursor.get(h).copied().unwrap_or(0.0))
                .fold(0.0, f64::max);
            let finish = start + duration;
            for h in hosts {
                cursor.insert(h, finish);
            }
            makespan = makespan.max(finish);
        }
        makespan
    }

    /// A lower bound on any schedule's makespan, from pure bandwidth
    /// arguments: each receiver host's NIC must absorb every slice that no
    /// source replica can deliver locally, and every unit task needs at
    /// least its own transfer time.
    pub fn lower_bound(&self) -> f64 {
        let mut recv_load: BTreeMap<HostId, f64> = BTreeMap::new();
        let mut longest = 0.0f64;
        for a in &self.assignments {
            let unit = &self.task.units()[a.unit];
            let bytes = unit.bytes as f64;
            let sender_hosts = unit.sender_hosts();
            // Best-case transfer time of this unit in isolation.
            let all_local = unit
                .receiver_hosts()
                .iter()
                .all(|h| sender_hosts.contains(h));
            let best = if all_local {
                bytes / self.params.intra_bw
            } else {
                bytes / self.params.inter_bw
            };
            longest = longest.max(best);
            for h in unit.receiver_hosts() {
                if !sender_hosts.contains(&h) {
                    *recv_load.entry(h).or_insert(0.0) += bytes / self.params.inter_bw;
                }
            }
        }
        recv_load.values().copied().fold(0.0, f64::max).max(longest)
    }

    /// Lowers the plan into `graph`. Host-level serialization is enforced
    /// with dependency chains: each unit task waits for the previous task
    /// (in plan order) on each host it touches.
    ///
    /// Topology-blind form of [`lower_on`](Plan::lower_on): strategies
    /// that consult the cluster (multi-rail spray) degrade to their
    /// topology-free lowering.
    pub fn lower(&self, graph: &mut TaskGraph, deps: &[TaskId]) -> LoweredPlan {
        self.lower_on(graph, deps, None)
    }

    /// Lowers the plan into `graph` with the cluster topology available to
    /// topology-aware strategies: [`Strategy::MultiRail`] draws its NVLink
    /// rail relays from `cluster`'s host layout. Pass `None` to lower
    /// without a topology.
    pub fn lower_on(
        &self,
        graph: &mut TaskGraph,
        deps: &[TaskId],
        cluster: Option<&ClusterSpec>,
    ) -> LoweredPlan {
        let mut last_on_host: BTreeMap<HostId, TaskId> = BTreeMap::new();
        let mut per_unit = Vec::with_capacity(self.assignments.len());
        for a in &self.assignments {
            let unit = &self.task.units()[a.unit];
            let hosts = involved_hosts(unit, a.sender_host);
            let mut unit_deps: Vec<TaskId> = deps.to_vec();
            for h in &hosts {
                if let Some(&m) = last_on_host.get(h) {
                    unit_deps.push(m);
                }
            }
            let lowered =
                lower_unit_task_on(graph, unit, a.sender, a.strategy, &unit_deps, cluster);
            for h in hosts {
                last_on_host.insert(h, lowered.done);
            }
            per_unit.push(lowered);
        }
        let done = graph.add(Work::Marker, per_unit.iter().map(|l| l.done));
        LoweredPlan { per_unit, done }
    }

    /// Repairs the plan after sender failures: a new plan for the same
    /// task that avoids every excluded sender.
    ///
    /// Two candidates are built and the one with the smaller analytic
    /// [`estimate`](Plan::estimate) wins:
    ///
    /// * **patch** — assignments whose senders survive keep their slot;
    ///   orphaned units are re-assigned with the LPT greedy on top of the
    ///   surviving per-host load (fast, minimal churn);
    /// * **replan** — the full ensemble planner re-runs on the filtered
    ///   task (slower, but escapes a badly skewed surviving layout).
    ///
    /// # Errors
    ///
    /// [`RepairError::DataLoss`] if some unit task has no surviving
    /// replica holder — the slice cannot be recovered from the source
    /// mesh.
    pub fn repair(&self, exclusions: &SenderExclusions) -> Result<Plan<'t>, RepairError> {
        let filtered = self.task.excluding(exclusions)?;
        if exclusions.is_empty() {
            return Ok(self.clone());
        }

        // Patch candidate: keep surviving assignments (and their host
        // loads), then place each orphan on the lightest surviving
        // replica host, longest orphan first.
        let mut load: BTreeMap<HostId, f64> = BTreeMap::new();
        let mut patched = Vec::with_capacity(self.assignments.len());
        let mut orphans = Vec::new();
        for a in &self.assignments {
            if exclusions.excludes(a.sender, a.sender_host) {
                orphans.push(*a);
            } else {
                let unit = &self.task.units()[a.unit];
                *load.entry(a.sender_host).or_insert(0.0) +=
                    estimate_unit_task(&self.params, unit, a.sender_host, a.strategy);
                patched.push(*a);
            }
        }
        orphans.sort_by(|a, b| {
            let units = filtered.units();
            let best = |x: &Assignment| {
                units[x.unit]
                    .sender_hosts()
                    .into_iter()
                    .map(|h| estimate_unit_task(&self.params, &units[x.unit], h, x.strategy))
                    .fold(f64::INFINITY, f64::min)
            };
            best(b).total_cmp(&best(a)).then(a.unit.cmp(&b.unit))
        });
        for a in orphans {
            let unit = &filtered.units()[a.unit];
            let (host, duration) = unit
                .sender_hosts()
                .into_iter()
                .map(|h| (h, estimate_unit_task(&self.params, unit, h, a.strategy)))
                .min_by(|&(ha, da), &(hb, db)| {
                    let la = load.get(&ha).copied().unwrap_or(0.0) + da;
                    let lb = load.get(&hb).copied().unwrap_or(0.0) + db;
                    la.total_cmp(&lb).then(ha.cmp(&hb))
                })
                .expect("excluding() guarantees a surviving replica");
            *load.entry(host).or_insert(0.0) += duration;
            patched.push(Assignment {
                unit: a.unit,
                sender: replica_on(unit, host),
                sender_host: host,
                strategy: a.strategy,
            });
        }
        let patch = Plan::new(self.task, patched, self.params);

        // Replan candidate: the ensemble planner from scratch on the
        // filtered task.
        let replan = plan_with_exclusions(
            &EnsemblePlanner::new(PlannerConfig::new(self.params)),
            self.task,
            exclusions,
        )?;

        Ok(if patch.estimate() <= replan.estimate() {
            patch
        } else {
            replan
        })
    }

    /// Runs the static plan verifier (`crossmesh-check`) over this plan:
    /// coverage, sender-exclusion, ring well-formedness, and — when
    /// `cluster` is given — capacity sanity. Returns every diagnostic;
    /// an empty vector means the plan is provably well-formed.
    pub fn verify(
        &self,
        cluster: Option<&ClusterSpec>,
        excluded: &dyn Fn(DeviceId, HostId) -> bool,
    ) -> Vec<crossmesh_check::Diagnostic> {
        let views: Vec<_> = self.assignments.iter().map(Assignment::as_view).collect();
        crossmesh_check::verify::verify_plan(
            self.task.units(),
            self.task.shape(),
            self.task.elem_bytes(),
            &views,
            cluster,
            excluded,
        )
    }

    /// Executes the plan alone on `cluster` with the simulator backend and
    /// reports the simulated completion time.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (e.g. the plan references devices not in
    /// `cluster`).
    pub fn execute(&self, cluster: &ClusterSpec) -> Result<ExecutionReport, SimError> {
        self.execute_with(&SimBackend, cluster)
    }

    /// Executes the plan alone on `cluster` through an arbitrary
    /// [`Backend`] — the flow-level simulator, or a real execution backend
    /// such as the threaded runtime. `simulated_seconds` then reports
    /// whatever clock the backend uses (wall seconds for real backends).
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn execute_with(
        &self,
        backend: &dyn Backend,
        cluster: &ClusterSpec,
    ) -> Result<ExecutionReport, SimError> {
        let diags = self.verify(Some(cluster), &|_, _| false);
        if crossmesh_check::has_errors(&diags) {
            return Err(SimError::Backend {
                backend: "check",
                message: format!(
                    "plan failed static verification:\n{}",
                    crossmesh_check::render_text(&diags)
                ),
            });
        }
        let mut graph = TaskGraph::new();
        let lowered = self.lower_on(&mut graph, &[], Some(cluster));
        let trace = backend.execute(cluster, &graph)?;
        Ok(ExecutionReport {
            simulated_seconds: trace.interval(lowered.done).finish,
            cross_host_bytes: trace.usage().total_cross_host_bytes(),
            tasks_lowered: graph.len(),
        })
    }
}

/// The hosts a unit task occupies while executing: its sender host plus all
/// receiver hosts.
pub(crate) fn involved_hosts(unit: &crossmesh_mesh::UnitTask, sender_host: HostId) -> Vec<HostId> {
    let mut hosts = unit.receiver_hosts();
    if let Err(pos) = hosts.binary_search(&sender_host) {
        hosts.insert(pos, sender_host);
    }
    hosts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_mesh::DeviceMesh;
    use crossmesh_netsim::{Engine, LinkParams};

    fn setup() -> (ClusterSpec, ReshardingTask) {
        let c =
            ClusterSpec::homogeneous(4, 2, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0));
        let a = DeviceMesh::from_cluster(&c, 0, (2, 2), "A").unwrap();
        let b = DeviceMesh::from_cluster(&c, 2, (2, 2), "B").unwrap();
        let t = ReshardingTask::new(
            a,
            "S0R".parse().unwrap(),
            b,
            "S0R".parse().unwrap(),
            &[8, 8],
            1,
        )
        .unwrap();
        (c, t)
    }

    fn params() -> CostParams {
        CostParams {
            inter_bw: 1.0,
            intra_bw: 100.0,
            inter_latency: 0.0,
            intra_latency: 0.0,
        }
    }

    fn plan_for(task: &ReshardingTask) -> Plan<'_> {
        let assignments = task
            .units()
            .iter()
            .enumerate()
            .map(|(i, u)| Assignment {
                unit: i,
                sender: u.senders[0].0,
                sender_host: u.senders[0].1,
                strategy: Strategy::broadcast(),
            })
            .collect();
        Plan::new(task, assignments, params())
    }

    #[test]
    fn execute_reports_cross_host_traffic() {
        let (c, t) = setup();
        let plan = plan_for(&t);
        let report = plan.execute(&c).unwrap();
        // Two 32-byte halves, each broadcast to one remote host once.
        assert!((report.cross_host_bytes - 64.0).abs() < 1e-6);
        assert!(report.simulated_seconds > 0.0);
    }

    #[test]
    fn estimate_is_close_to_simulation_for_disjoint_tasks() {
        let (c, t) = setup();
        let plan = plan_for(&t);
        let est = plan.estimate();
        let sim = plan.execute(&c).unwrap().simulated_seconds;
        let rel = (est - sim).abs() / sim;
        assert!(rel < 0.2, "estimate {est} vs simulated {sim}");
    }

    #[test]
    fn lower_bound_holds() {
        let (c, t) = setup();
        let plan = plan_for(&t);
        let sim = plan.execute(&c).unwrap().simulated_seconds;
        assert!(plan.lower_bound() <= sim + 1e-9);
        assert!(plan.lower_bound() <= plan.estimate() + 1e-9);
    }

    #[test]
    fn conflicting_tasks_serialize() {
        // Force both units through the same sender host; they must not
        // overlap there.
        let (c, t) = setup();
        // Unit replicas: S0R on 2x2 mesh -> each slice held by one row
        // (2 devices on one host each, since rows are hosts).
        let assignments: Vec<Assignment> = t
            .units()
            .iter()
            .enumerate()
            .map(|(i, u)| Assignment {
                unit: i,
                sender: u.senders[0].0,
                sender_host: u.senders[0].1,
                strategy: Strategy::SendRecv,
            })
            .collect();
        let plan = Plan::new(&t, assignments, params());
        let mut graph = TaskGraph::new();
        let lowered = plan.lower(&mut graph, &[]);
        let trace = Engine::new(&c).run(&graph).unwrap();
        // Receiver hosts are disjoint (unit 0 -> host 2, unit 1 -> host 3)
        // and senders are distinct hosts, so they CAN overlap.
        let i0 = trace.interval(lowered.per_unit[0].done);
        let i1 = trace.interval(lowered.per_unit[1].done);
        assert!(i0.overlaps(&i1) || i0.finish <= i1.start || i1.finish <= i0.start);
        assert!(trace.interval(lowered.done).finish > 0.0);
    }

    fn replicated_task() -> (ClusterSpec, ReshardingTask) {
        let c =
            ClusterSpec::homogeneous(4, 4, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0));
        let a = DeviceMesh::from_cluster(&c, 0, (2, 4), "A").unwrap();
        let b = DeviceMesh::from_cluster(&c, 2, (2, 4), "B").unwrap();
        // RS1R: every slice is replicated on both sender hosts, so one
        // host can fail and the tensor is still recoverable.
        let t = ReshardingTask::new(
            a,
            "RS1R".parse().unwrap(),
            b,
            "S0RR".parse().unwrap(),
            &[8, 8, 8],
            1,
        )
        .unwrap();
        (c, t)
    }

    #[test]
    fn repair_routes_around_an_excluded_host() {
        let (c, t) = replicated_task();
        let plan = plan_for(&t);
        let dead = HostId(0);
        let e = crate::SenderExclusions::none().with_host(dead);
        let repaired = plan.repair(&e).unwrap();
        // Full coverage, no excluded senders.
        assert_eq!(repaired.assignments().len(), t.units().len());
        assert!(repaired.assignments().iter().all(|a| a.sender_host != dead));
        // Still executable, end to end.
        let report = repaired.execute(&c).unwrap();
        assert!(report.simulated_seconds > 0.0);
    }

    #[test]
    fn repair_with_no_exclusions_is_identity() {
        let (_, t) = replicated_task();
        let plan = plan_for(&t);
        let repaired = plan.repair(&crate::SenderExclusions::none()).unwrap();
        assert_eq!(repaired.assignments(), plan.assignments());
    }

    #[test]
    fn repair_reports_data_loss_when_the_last_replica_dies() {
        let (_, t) = setup();
        // S0R source on a (2,2) mesh: each slice lives on one host only.
        let plan = plan_for(&t);
        let doomed = plan.assignments()[0].sender_host;
        let e = crate::SenderExclusions::none().with_host(doomed);
        let err = plan.repair(&e).unwrap_err();
        assert!(matches!(err, crate::RepairError::DataLoss { .. }));
    }

    #[test]
    fn repair_is_no_worse_than_dropping_to_one_host() {
        // With host 0 gone, everything must go through host 1; the repair
        // estimate must match that single-host serialization, not exceed
        // it wildly.
        let (_, t) = replicated_task();
        let plan = plan_for(&t);
        let e = crate::SenderExclusions::none().with_host(HostId(0));
        let repaired = plan.repair(&e).unwrap();
        let total: f64 = repaired
            .assignments()
            .iter()
            .map(|a| {
                estimate_unit_task(
                    repaired.params(),
                    &t.units()[a.unit],
                    a.sender_host,
                    a.strategy,
                )
            })
            .sum();
        assert!(repaired.estimate() <= total + 1e-9);
    }

    #[test]
    #[should_panic(expected = "every unit task")]
    fn incomplete_plan_panics() {
        let (_, t) = setup();
        Plan::new(&t, vec![], params());
    }

    #[test]
    #[should_panic(expected = "not a replica holder")]
    fn bad_sender_panics() {
        let (c, t) = setup();
        let assignments = vec![
            Assignment {
                unit: 0,
                sender: c.device(3, 0),
                sender_host: HostId(3),
                strategy: Strategy::SendRecv,
            },
            Assignment {
                unit: 1,
                sender: t.units()[1].senders[0].0,
                sender_host: t.units()[1].senders[0].1,
                strategy: Strategy::SendRecv,
            },
        ];
        Plan::new(&t, assignments, params());
    }

    #[test]
    fn involved_hosts_includes_sender_once() {
        let (_, t) = setup();
        let u = &t.units()[0];
        let hosts = involved_hosts(u, u.senders[0].1);
        let mut dedup = hosts.clone();
        dedup.dedup();
        assert_eq!(hosts, dedup);
        assert!(hosts.contains(&u.senders[0].1));
    }
}
