//! Content-addressed plan cache: amortizes planning across iterations.
//!
//! Pipeline execution re-plans the identical stage-pair reshard on every
//! microbatch, and fault recovery re-plans on every repair round. Both
//! inputs are content-addressable: the planning problem is fully described
//! by (task signature, sender exclusions, planner fingerprint), so a plan
//! computed once can be replayed for free until any component changes.
//! Exclusions are part of the key — a crash *changes the key* rather than
//! mutating an entry, so stale plans through dead hosts are structurally
//! impossible; a defensive re-check on every hit enforces it anyway.

use crate::exclusions::{RepairError, SenderExclusions};
use crate::plan::{Assignment, Plan};
use crate::planners::{plan_with_exclusions, Planner};
use crate::task::ReshardingTask;
use crossmesh_collectives::CostParams;
use crossmesh_hb as hb;
use crossmesh_obs as obs;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// Process-wide mirror counters: every cache reports into these in
/// addition to its own registry, so the CLI's `--metrics` dump shows
/// aggregate cache behaviour without threading cache references around.
struct GlobalCacheMetrics {
    hits: obs::Counter,
    misses: obs::Counter,
    invalidations: obs::Counter,
}

fn global_cache_metrics() -> &'static GlobalCacheMetrics {
    static METRICS: OnceLock<GlobalCacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let m = obs::metrics();
        GlobalCacheMetrics {
            hits: m.counter("plan_cache.hits"),
            misses: m.counter("plan_cache.misses"),
            invalidations: m.counter("plan_cache.invalidations"),
        }
    })
}

/// A cached plan, stored task-independently as its assignment list; a hit
/// re-binds it with [`Plan::new`], which revalidates it against the task.
#[derive(Clone)]
struct Entry {
    assignments: Vec<Assignment>,
    params: CostParams,
}

/// Shards in the entry map. Keys are `DefaultHasher` outputs, so the low
/// bits are uniform enough to index with a mask.
const SHARDS: usize = 16;

/// Hit/miss/size counters of a [`PlanCache`], taken with
/// [`stats`](PlanCache::stats).
///
/// Since the observability rework these are *views* over the cache's
/// private metrics registry (see [`PlanCache::registry`]); the struct is
/// kept so existing callers and the `PipelineReport` / `RecoveryReport`
/// delta fields keep working unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run the planner.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe, content-addressed cache of resharding plans.
///
/// Keys combine the [`ReshardingTask::cache_signature`], the
/// [`SenderExclusions`], and the [`Planner::fingerprint`] (plus, for
/// [`repair`](PlanCache::repair), the incumbent plan's assignments, since
/// the repair patch depends on them). The planner only runs on a miss;
/// a hit replays the stored assignments through [`Plan::new`], which
/// re-asserts their validity for the task at hand.
///
/// The cache is built for concurrent callers (the resharding daemon's
/// worker pool hammers one shared instance from every worker): entries
/// live in [`SHARDS`] independently locked shards keyed by the hash, and
/// the hit-path re-verification runs on a clone *outside* any lock, so a
/// slow verify on one entry never serializes unrelated lookups. Raced
/// duplicate misses both plan and both insert — planning is deterministic,
/// so the overwrites carry identical content and hit/miss *semantics*
/// match a serial execution (only the miss count can exceed one per key).
pub struct PlanCache {
    shards: Vec<Mutex<HashMap<u64, Entry>>>,
    /// Per-cache metrics registry: keeps this cache's statistics isolated
    /// from other caches (and from the process-wide registry, which only
    /// receives mirrored aggregates).
    registry: obs::MetricsRegistry,
    hits: obs::Counter,
    misses: obs::Counter,
    invalidations: obs::Counter,
}

impl Default for PlanCache {
    fn default() -> Self {
        let registry = obs::MetricsRegistry::new();
        let hits = registry.counter("plan_cache.hits");
        let misses = registry.counter("plan_cache.misses");
        let invalidations = registry.counter("plan_cache.invalidations");
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            registry,
            hits,
            misses,
            invalidations,
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Plans `task` with `planner`, serving a cached result when this
    /// exact (task, planner) pair was planned before.
    pub fn plan<'t, P: Planner + ?Sized>(&self, planner: &P, task: &'t ReshardingTask) -> Plan<'t> {
        self.plan_with_exclusions(planner, task, &SenderExclusions::none())
            .expect("empty exclusions cannot cause data loss")
    }

    /// Plans `task` with the excluded senders removed, serving a cached
    /// result when this exact (task, exclusions, planner) triple was
    /// planned before. The returned plan is bound to the *original* task,
    /// exactly like [`plan_with_exclusions`].
    ///
    /// # Errors
    ///
    /// [`RepairError::DataLoss`] if a unit task loses every replica holder.
    pub fn plan_with_exclusions<'t, P: Planner + ?Sized>(
        &self,
        planner: &P,
        task: &'t ReshardingTask,
        exclusions: &SenderExclusions,
    ) -> Result<Plan<'t>, RepairError> {
        self.plan_with_exclusions_outcome(planner, task, exclusions)
            .map(|(plan, _)| plan)
    }

    /// Like [`plan_with_exclusions`](PlanCache::plan_with_exclusions), but
    /// also reports whether this call was served from the cache. Counter
    /// deltas cannot answer that under concurrency (another worker's hit
    /// may land between two reads); the daemon tags every response with
    /// this per-call outcome instead.
    ///
    /// # Errors
    ///
    /// [`RepairError::DataLoss`] if a unit task loses every replica holder.
    pub fn plan_with_exclusions_outcome<'t, P: Planner + ?Sized>(
        &self,
        planner: &P,
        task: &'t ReshardingTask,
        exclusions: &SenderExclusions,
    ) -> Result<(Plan<'t>, bool), RepairError> {
        let mut h = DefaultHasher::new();
        task.cache_signature().hash(&mut h);
        exclusions.hash(&mut h);
        planner.fingerprint().hash(&mut h);
        let key = h.finish();

        if let Some(plan) = self.lookup(key, task, exclusions) {
            return Ok((plan, true));
        }
        let plan = plan_with_exclusions(planner, task, exclusions)?;
        self.insert(key, &plan);
        Ok((plan, false))
    }

    /// Repairs `plan` around `exclusions` (see [`Plan::repair`]), caching
    /// the result. The key includes the incumbent plan's assignments: the
    /// repair's *patch* candidate keeps surviving slots, so two different
    /// incumbent plans can repair differently.
    ///
    /// # Errors
    ///
    /// [`RepairError::DataLoss`] if a unit task loses every replica holder.
    pub fn repair<'t>(
        &self,
        plan: &Plan<'t>,
        exclusions: &SenderExclusions,
    ) -> Result<Plan<'t>, RepairError> {
        let task = plan.task();
        let mut h = DefaultHasher::new();
        "repair".hash(&mut h);
        task.cache_signature().hash(&mut h);
        exclusions.hash(&mut h);
        plan.assignments().hash(&mut h);
        plan.params().inter_bw.to_bits().hash(&mut h);
        plan.params().intra_bw.to_bits().hash(&mut h);
        plan.params().inter_latency.to_bits().hash(&mut h);
        plan.params().intra_latency.to_bits().hash(&mut h);
        let key = h.finish();

        if let Some(repaired) = self.lookup(key, task, exclusions) {
            return Ok(repaired);
        }
        let repaired = plan.repair(exclusions)?;
        self.insert(key, &repaired);
        Ok(repaired)
    }

    /// Counters since construction (or the last [`clear`](PlanCache::clear)),
    /// read from the cache's private metrics registry.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries: self
                .shards
                .iter()
                .map(|s| {
                    let guard = s.lock();
                    hb::read(hb::object_id(s));
                    guard.len()
                })
                .sum(),
        }
    }

    /// The cache's private metrics registry. Holds `plan_cache.hits`,
    /// `plan_cache.misses`, and `plan_cache.invalidations`; [`stats`]
    /// (and through it the report delta fields) are views over it.
    ///
    /// [`stats`]: PlanCache::stats
    pub fn registry(&self) -> &obs::MetricsRegistry {
        &self.registry
    }

    /// Drops every entry and resets the counters (the process-wide mirror
    /// counters are monotone and unaffected).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock();
            hb::write(hb::object_id(shard));
            guard.clear();
        }
        self.registry.reset();
    }

    /// The shard holding `key`.
    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Entry>> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Looks `key` up and re-binds the stored assignments to `task`,
    /// re-running the static verifier (`crossmesh-check`) over the entry
    /// under the *current* exclusions — a diagnostic means the entry is
    /// unusable (a sender died since it was stored, or a key collision
    /// bound it to the wrong task) and it is dropped as a miss.
    ///
    /// The entry is cloned out of the shard and verified lock-free; a
    /// conviction re-locks the shard and removes the key (idempotent if a
    /// racing caller already removed or replaced it).
    fn lookup<'t>(
        &self,
        key: u64,
        task: &'t ReshardingTask,
        exclusions: &SenderExclusions,
    ) -> Option<Plan<'t>> {
        let global = global_cache_metrics();
        // The shard map is a declared race-detector access point: every
        // touch happens under the shard lock, and `check::race` audits
        // exactly that (the lock is the instrumented shim).
        let entry = {
            let shard = self.shard(key);
            let guard = shard.lock();
            hb::read(hb::object_id(shard));
            guard.get(&key).cloned()
        };
        if let Some(entry) = entry {
            let views: Vec<_> = entry.assignments.iter().map(Assignment::as_view).collect();
            let diags = crossmesh_check::verify::verify_plan(
                task.units(),
                task.shape(),
                task.elem_bytes(),
                &views,
                None,
                &|d, h| exclusions.excludes(d, h),
            );
            if crossmesh_check::has_errors(&diags) {
                let shard = self.shard(key);
                let mut guard = shard.lock();
                hb::write(hb::object_id(shard));
                guard.remove(&key);
                drop(guard);
                self.invalidations.inc();
                global.invalidations.inc();
                obs::event(
                    obs::Level::Warn,
                    "plan_cache",
                    "invalidated",
                    &[
                        obs::Field::u64("key", key),
                        obs::Field::str("rule", diags[0].rule.id()),
                    ],
                );
            } else {
                self.hits.inc();
                global.hits.inc();
                let plan = Plan::new(task, entry.assignments, entry.params);
                return Some(plan);
            }
        }
        self.misses.inc();
        global.misses.inc();
        None
    }

    /// Stores a freshly planned result. Raced duplicate misses overwrite
    /// each other with identical content (planning is deterministic).
    fn insert(&self, key: u64, plan: &Plan<'_>) {
        let shard = self.shard(key);
        let mut guard = shard.lock();
        hb::write(hb::object_id(shard));
        guard.insert(
            key,
            Entry {
                assignments: plan.assignments().to_vec(),
                params: *plan.params(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planners::testutil::*;
    use crate::planners::{EnsemblePlanner, NaivePlanner};
    use crossmesh_netsim::HostId;

    #[test]
    fn second_plan_is_a_hit_and_identical() {
        let t = task("RS0R", "S0RR", &[16, 8, 8]);
        let planner = EnsemblePlanner::new(config());
        let cache = PlanCache::new();
        let cold = cache.plan(&planner, &t);
        let warm = cache.plan(&planner, &t);
        assert_eq!(cold.assignments(), warm.assignments());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.hit_rate() > 0.4);
    }

    #[test]
    fn different_planners_do_not_share_entries() {
        let t = task("RS0R", "S0RR", &[16, 8, 8]);
        let cache = PlanCache::new();
        let a = cache.plan(&EnsemblePlanner::new(config()), &t);
        let b = cache.plan(&NaivePlanner::new(config()), &t);
        assert_eq!(cache.stats().misses, 2);
        // Naive really ran (it pins everything on the lowest host).
        assert!(b.estimate() >= a.estimate() - 1e-9);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn exclusions_change_the_key() {
        let t = task("RS1R", "S0RR", &[8, 8, 8]);
        let planner = EnsemblePlanner::new(config());
        let cache = PlanCache::new();
        let _ = cache.plan(&planner, &t);
        let dead = HostId(0);
        let excl = SenderExclusions::none().with_host(dead);
        let repaired = cache
            .plan_with_exclusions(&planner, &t, &excl)
            .expect("replicas survive");
        assert!(repaired.assignments().iter().all(|a| a.sender_host != dead));
        assert_eq!(
            cache.stats().hits,
            0,
            "exclusions must not hit the base key"
        );
        // Replaying the same exclusions IS a hit, still avoiding the host.
        let again = cache.plan_with_exclusions(&planner, &t, &excl).unwrap();
        assert_eq!(again.assignments(), repaired.assignments());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn repair_is_cached_per_incumbent_plan() {
        let t = task("RS1R", "S0RR", &[8, 8, 8]);
        let planner = EnsemblePlanner::new(config());
        let cache = PlanCache::new();
        let plan = planner.plan(&t);
        let excl = SenderExclusions::none().with_host(HostId(1));
        let a = cache.repair(&plan, &excl).unwrap();
        let b = cache.repair(&plan, &excl).unwrap();
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(cache.stats().hits, 1);
        assert!(a.assignments().iter().all(|x| x.sender_host != HostId(1)));
    }

    #[test]
    fn the_cache_is_shareable_across_threads() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<PlanCache>();
        assert_sync_send::<std::sync::Arc<PlanCache>>();
    }

    #[test]
    fn outcome_reports_the_per_call_hit() {
        let t = task("RS0R", "S0RR", &[16, 8, 8]);
        let planner = EnsemblePlanner::new(config());
        let cache = PlanCache::new();
        let none = SenderExclusions::none();
        let (cold, hit) = cache
            .plan_with_exclusions_outcome(&planner, &t, &none)
            .unwrap();
        assert!(!hit, "first call must plan");
        let (warm, hit) = cache
            .plan_with_exclusions_outcome(&planner, &t, &none)
            .unwrap();
        assert!(hit, "second call must replay");
        assert_eq!(cold.assignments(), warm.assignments());
    }

    #[test]
    fn clear_resets_everything() {
        let t = task("RS0R", "S0RR", &[8, 8, 8]);
        let cache = PlanCache::new();
        let _ = cache.plan(&EnsemblePlanner::new(config()), &t);
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
