//! The ensemble the paper actually ships: best of DFS and randomized greedy.

use super::{DfsPlanner, Planner, PlannerConfig, RandomizedGreedyPlanner};
use crate::plan::Plan;
use crate::task::ReshardingTask;
use crossmesh_obs as obs;

/// Runs both [`DfsPlanner`] and [`RandomizedGreedyPlanner`] and keeps the
/// plan with the smaller estimated makespan — the configuration used for
/// "ours" throughout the paper's evaluation ("We run both algorithms and
/// choose the better result", §5.3.1).
///
/// # Example
///
/// ```
/// use crossmesh_core::{EnsemblePlanner, Planner, ReshardingTask};
/// use crossmesh_mesh::DeviceMesh;
/// use crossmesh_netsim::{ClusterSpec, LinkParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cluster = ClusterSpec::homogeneous(4, 4, LinkParams::new(100e9, 1.25e9));
/// let task = ReshardingTask::new(
///     DeviceMesh::from_cluster(&cluster, 0, (2, 4), "src")?,
///     "RS0R".parse()?,
///     DeviceMesh::from_cluster(&cluster, 2, (2, 4), "dst")?,
///     "S0RR".parse()?,
///     &[256, 256, 64],
///     4,
/// )?;
/// let plan = EnsemblePlanner::default().plan(&task);
/// let report = plan.execute(&cluster)?;
/// assert!(report.simulated_seconds >= plan.lower_bound());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnsemblePlanner {
    dfs: DfsPlanner,
    greedy: RandomizedGreedyPlanner,
}

impl EnsemblePlanner {
    /// Creates the ensemble with both member planners sharing `config`.
    pub fn new(config: PlannerConfig) -> Self {
        EnsemblePlanner {
            dfs: DfsPlanner::new(config),
            greedy: RandomizedGreedyPlanner::new(config),
        }
    }

    /// Replaces the DFS member (e.g. to change its node budget).
    #[must_use]
    pub fn with_dfs(mut self, dfs: DfsPlanner) -> Self {
        self.dfs = dfs;
        self
    }

    /// Replaces the randomized-greedy member.
    #[must_use]
    pub fn with_greedy(mut self, greedy: RandomizedGreedyPlanner) -> Self {
        self.greedy = greedy;
        self
    }
}

impl Planner for EnsemblePlanner {
    fn plan<'t>(&self, task: &'t ReshardingTask) -> Plan<'t> {
        let span = obs::Span::enter(
            obs::Level::Debug,
            "planner.ensemble",
            "plan",
            &[obs::Field::u64("units", task.units().len() as u64)],
        );
        // DFS explodes on large task counts; skip it there, as the paper
        // observes it "fails to produce an efficient schedule ... when
        // there are > 20 unit communication tasks".
        if task.units().len() > 20 {
            span.record(&[obs::Field::str("winner", "greedy (dfs skipped)")]);
            return self.greedy.plan(task);
        }
        // Both members run concurrently on the current rayon pool; each is
        // internally deterministic, and the tie prefers DFS (the fixed
        // planner-priority order), so the choice is thread-count-invariant.
        let (dfs, greedy) = rayon::join(|| self.dfs.plan(task), || self.greedy.plan(task));
        let dfs_wins = dfs.estimate() <= greedy.estimate();
        span.record(&[obs::Field::str(
            "winner",
            if dfs_wins { "dfs" } else { "greedy" },
        )]);
        if dfs_wins {
            dfs
        } else {
            greedy
        }
    }

    fn name(&self) -> &'static str {
        "ours"
    }

    fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        use std::hash::{Hash, Hasher};
        self.name().hash(&mut h);
        (self.dfs.fingerprint(), self.greedy.fingerprint()).hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn at_least_as_good_as_either_member() {
        for (src, dst) in [("RRR", "S0RR"), ("RS0R", "S0RR"), ("S0RR", "S1RR")] {
            let t = task(src, dst, &[16, 8, 8]);
            let e = EnsemblePlanner::new(config()).plan(&t).estimate();
            let d = DfsPlanner::new(config()).plan(&t).estimate();
            let g = RandomizedGreedyPlanner::new(config()).plan(&t).estimate();
            assert!(
                e <= d.min(g) + 1e-9,
                "{src}->{dst}: {e} vs dfs {d} / greedy {g}"
            );
        }
    }

    #[test]
    fn large_task_counts_skip_dfs() {
        // S^{01} on a big first dim -> many unit tasks; must stay fast.
        let t = task("S01RR", "S01RR", &[64, 8, 8]);
        assert!(t.units().len() > 4);
        let plan = EnsemblePlanner::new(config()).plan(&t);
        assert_eq!(plan.assignments().len(), t.units().len());
    }

    #[test]
    fn name_is_ours() {
        assert_eq!(EnsemblePlanner::default().name(), "ours");
    }
}
