//! Greedy search with randomization (paper §3.2).

use super::{replica_on, Planner, PlannerConfig};
use crate::plan::{Assignment, Plan};
use crate::task::ReshardingTask;
use crossmesh_netsim::HostId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// The paper's randomized greedy: iteratively pack *rounds* of mutually
/// non-conflicting unit tasks (no shared sender or receiver host). Each
/// round is found by trying several random task orderings and keeping the
/// candidate set that involves the most devices. Because a resharding
/// task's unit tasks are mostly identical and uniformly spread over
/// devices, a few random permutations routinely find optimal rounds.
///
/// Deterministic for a fixed `seed`.
#[derive(Debug, Clone)]
pub struct RandomizedGreedyPlanner {
    config: PlannerConfig,
    permutations: usize,
    seed: u64,
}

impl Default for RandomizedGreedyPlanner {
    fn default() -> Self {
        RandomizedGreedyPlanner {
            config: PlannerConfig::default(),
            permutations: 16,
            seed: 0x5eed,
        }
    }
}

impl RandomizedGreedyPlanner {
    /// Creates the planner with 16 permutations per round and a fixed seed.
    pub fn new(config: PlannerConfig) -> Self {
        RandomizedGreedyPlanner {
            config,
            ..Default::default()
        }
    }

    /// Returns a copy with the number of random permutations per round
    /// replaced.
    ///
    /// # Panics
    ///
    /// Panics if `permutations` is zero.
    #[must_use]
    pub fn with_permutations(mut self, permutations: usize) -> Self {
        assert!(permutations > 0, "need at least one permutation per round");
        self.permutations = permutations;
        self
    }

    /// Returns a copy with the RNG seed replaced.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Greedily selects a conflict-free set following `order`, preferring
    /// for each task a sender host that is still free. Returns
    /// `(selected (unit, host), involved-device score)`.
    fn select_round(
        &self,
        task: &ReshardingTask,
        order: &[usize],
    ) -> (Vec<(usize, HostId)>, usize) {
        let mut busy: BTreeSet<HostId> = BTreeSet::new();
        let mut picked = Vec::new();
        let mut score = 0usize;
        'units: for &u in order {
            let unit = &task.units()[u];
            let recv_hosts = unit.receiver_hosts();
            if recv_hosts.iter().any(|h| busy.contains(h)) {
                continue;
            }
            for h in unit.sender_hosts() {
                if !busy.contains(&h) {
                    busy.insert(h);
                    busy.extend(recv_hosts.iter().copied());
                    score += 1 + unit.receivers.len();
                    picked.push((u, h));
                    continue 'units;
                }
            }
        }
        (picked, score)
    }
}

impl Planner for RandomizedGreedyPlanner {
    fn plan<'t>(&self, task: &'t ReshardingTask) -> Plan<'t> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut remaining: Vec<usize> = (0..task.units().len()).collect();
        let mut assignments = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let mut best: Option<(Vec<(usize, HostId)>, usize)> = None;
            for p in 0..self.permutations {
                let mut order = remaining.clone();
                // First permutation is the deterministic index order; the
                // rest are random.
                if p > 0 {
                    order.shuffle(&mut rng);
                }
                let (picked, score) = self.select_round(task, &order);
                if best.as_ref().is_none_or(|(_, s)| score > *s) {
                    best = Some((picked, score));
                }
            }
            let (mut picked, _) = best.expect("at least one permutation ran");
            debug_assert!(!picked.is_empty(), "a round always fits one task");
            // Deterministic intra-round order.
            picked.sort_by_key(|&(u, _)| u);
            let selected: BTreeSet<usize> = picked.iter().map(|&(u, _)| u).collect();
            for (u, host) in picked {
                let unit = &task.units()[u];
                assignments.push(Assignment {
                    unit: u,
                    sender: replica_on(unit, host),
                    sender_host: host,
                    strategy: self.config.strategy.resolve(unit),
                });
            }
            remaining.retain(|u| !selected.contains(u));
        }
        Plan::new(task, assignments, self.config.params)
    }

    fn name(&self) -> &'static str {
        "randomized_greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::{LoadBalancePlanner, NaivePlanner};
    use super::*;

    #[test]
    fn covers_all_units_once() {
        let t = task("S0RR", "S01RR", &[16, 8, 8]);
        let plan = RandomizedGreedyPlanner::new(config()).plan(&t);
        assert_eq!(plan.assignments().len(), t.units().len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t = task("RS0R", "S0RR", &[16, 8, 8]);
        let p = RandomizedGreedyPlanner::new(config()).with_seed(7);
        let a = p.plan(&t);
        let b = p.plan(&t);
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn rounds_are_conflict_free() {
        // Within the schedule, consecutive assignments picked in the same
        // round share no host; verify via estimate <= serial sum.
        let t = task("RS0R", "S0RR", &[16, 16, 8]);
        let plan = RandomizedGreedyPlanner::new(config()).plan(&t);
        let serial: f64 = plan
            .assignments()
            .iter()
            .map(|a| {
                crossmesh_collectives::estimate_unit_task(
                    &config().params,
                    &t.units()[a.unit],
                    a.sender_host,
                    a.strategy,
                )
            })
            .sum();
        assert!(plan.estimate() <= serial + 1e-9);
    }

    #[test]
    fn beats_or_matches_naive_and_lpt_on_case3_like_workloads() {
        // Case 3 of Table 2 (RS^0R -> S^0RR) is where the paper's ordering
        // wins: reordering lets both sender nodes transmit concurrently.
        let c = cluster();
        let t = task("RS0R", "S0RR", &[32, 32, 8]);
        let greedy = RandomizedGreedyPlanner::new(config())
            .plan(&t)
            .execute(&c)
            .unwrap()
            .simulated_seconds;
        let naive = NaivePlanner::new(config())
            .plan(&t)
            .execute(&c)
            .unwrap()
            .simulated_seconds;
        let lpt = LoadBalancePlanner::new(config())
            .plan(&t)
            .execute(&c)
            .unwrap()
            .simulated_seconds;
        assert!(greedy <= naive * 1.01, "greedy {greedy} vs naive {naive}");
        assert!(greedy <= lpt * 1.01, "greedy {greedy} vs lpt {lpt}");
    }

    #[test]
    #[should_panic(expected = "at least one permutation")]
    fn zero_permutations_panics() {
        let _ = RandomizedGreedyPlanner::new(config()).with_permutations(0);
    }
}
