//! Greedy search with randomization (paper §3.2).

use super::{replica_on, Planner, PlannerConfig};
use crate::plan::{Assignment, Plan};
use crate::task::ReshardingTask;
use crossmesh_netsim::HostId;
use crossmesh_obs as obs;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// Registry handles for the greedy search, resolved once. Rounds are
/// counted locally per restart and flushed in one add.
struct GreedyMetrics {
    plans: obs::Counter,
    restarts: obs::Counter,
    rounds: obs::Counter,
}

fn greedy_metrics() -> &'static GreedyMetrics {
    static METRICS: OnceLock<GreedyMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let m = obs::metrics();
        GreedyMetrics {
            plans: m.counter("planner.greedy.plans"),
            restarts: m.counter("planner.greedy.restarts"),
            rounds: m.counter("planner.greedy.rounds"),
        }
    })
}

/// The paper's randomized greedy: iteratively pack *rounds* of mutually
/// non-conflicting unit tasks (no shared sender or receiver host). Each
/// round is found by trying several random task orderings and keeping the
/// candidate set that involves the most devices. Because a resharding
/// task's unit tasks are mostly identical and uniformly spread over
/// devices, a few random permutations routinely find optimal rounds.
///
/// The planner runs several independent *restarts*, each with its own
/// seeded RNG stream, fanned out over the current rayon pool; the best
/// plan wins, ties broken by restart index, so the result is byte-identical
/// at every thread count. Restart 0 reuses `seed` directly, which makes a
/// single-restart planner behave exactly like the historical
/// single-stream one.
///
/// Deterministic for a fixed `seed`.
#[derive(Debug, Clone)]
pub struct RandomizedGreedyPlanner {
    config: PlannerConfig,
    permutations: usize,
    seed: u64,
    restarts: usize,
}

impl Default for RandomizedGreedyPlanner {
    fn default() -> Self {
        RandomizedGreedyPlanner {
            config: PlannerConfig::default(),
            permutations: 16,
            seed: 0x5eed,
            restarts: 4,
        }
    }
}

impl RandomizedGreedyPlanner {
    /// Creates the planner with 16 permutations per round and a fixed seed.
    pub fn new(config: PlannerConfig) -> Self {
        RandomizedGreedyPlanner {
            config,
            ..Default::default()
        }
    }

    /// Returns a copy with the number of random permutations per round
    /// replaced.
    ///
    /// # Panics
    ///
    /// Panics if `permutations` is zero.
    #[must_use]
    pub fn with_permutations(mut self, permutations: usize) -> Self {
        assert!(permutations > 0, "need at least one permutation per round");
        self.permutations = permutations;
        self
    }

    /// Returns a copy with the RNG seed replaced.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the number of independent restarts replaced.
    /// Restarts are the planner's parallel grain: each runs the full
    /// round-packing loop with its own RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `restarts` is zero.
    #[must_use]
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        assert!(restarts > 0, "need at least one restart");
        self.restarts = restarts;
        self
    }

    /// The seed of restart `r`: the configured seed verbatim for restart 0
    /// (preserving the historical stream), a golden-ratio-mixed variant for
    /// the rest (`SmallRng` splitmixes it further, decorrelating streams).
    fn restart_seed(&self, r: usize) -> u64 {
        self.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(r as u64)
    }

    /// One full restart: the historical single-stream round-packing loop.
    fn run_restart(&self, task: &ReshardingTask, seed: u64) -> Vec<Assignment> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut remaining: Vec<usize> = (0..task.units().len()).collect();
        let mut assignments = Vec::with_capacity(remaining.len());
        let mut rounds = 0u64;
        while !remaining.is_empty() {
            rounds += 1;
            let mut best: Option<(Vec<(usize, HostId)>, usize)> = None;
            for p in 0..self.permutations {
                let mut order = remaining.clone();
                // First permutation is the deterministic index order; the
                // rest are random.
                if p > 0 {
                    order.shuffle(&mut rng);
                }
                let (picked, score) = self.select_round(task, &order);
                if best.as_ref().is_none_or(|(_, s)| score > *s) {
                    best = Some((picked, score));
                }
            }
            let (mut picked, _) = best.expect("at least one permutation ran");
            debug_assert!(!picked.is_empty(), "a round always fits one task");
            // Deterministic intra-round order.
            picked.sort_by_key(|&(u, _)| u);
            let selected: BTreeSet<usize> = picked.iter().map(|&(u, _)| u).collect();
            for (u, host) in picked {
                let unit = &task.units()[u];
                assignments.push(Assignment {
                    unit: u,
                    sender: replica_on(unit, host),
                    sender_host: host,
                    strategy: self.config.strategy.resolve(unit),
                });
            }
            remaining.retain(|u| !selected.contains(u));
        }
        let metrics = greedy_metrics();
        metrics.restarts.inc();
        metrics.rounds.add(rounds);
        assignments
    }

    /// Greedily selects a conflict-free set following `order`, preferring
    /// for each task a sender host that is still free. Returns
    /// `(selected (unit, host), involved-device score)`.
    fn select_round(
        &self,
        task: &ReshardingTask,
        order: &[usize],
    ) -> (Vec<(usize, HostId)>, usize) {
        let mut busy: BTreeSet<HostId> = BTreeSet::new();
        let mut picked = Vec::new();
        let mut score = 0usize;
        'units: for &u in order {
            let unit = &task.units()[u];
            let recv_hosts = unit.receiver_hosts();
            if recv_hosts.iter().any(|h| busy.contains(h)) {
                continue;
            }
            for h in unit.sender_hosts() {
                if !busy.contains(&h) {
                    busy.insert(h);
                    busy.extend(recv_hosts.iter().copied());
                    score += 1 + unit.receivers.len();
                    picked.push((u, h));
                    continue 'units;
                }
            }
        }
        (picked, score)
    }
}

impl Planner for RandomizedGreedyPlanner {
    fn plan<'t>(&self, task: &'t ReshardingTask) -> Plan<'t> {
        let _span = obs::Span::enter(
            obs::Level::Debug,
            "planner.greedy",
            "plan",
            &[
                obs::Field::u64("units", task.units().len() as u64),
                obs::Field::u64("restarts", self.restarts as u64),
            ],
        );
        greedy_metrics().plans.inc();
        let seeds: Vec<u64> = (0..self.restarts).map(|r| self.restart_seed(r)).collect();
        let candidates: Vec<(f64, Vec<Assignment>)> = seeds
            .par_iter()
            .map(|&seed| {
                let assignments = self.run_restart(task, seed);
                let est = Plan::new(task, assignments.clone(), self.config.params).estimate();
                (est, assignments)
            })
            .collect();
        // Deterministic reduction: min (estimate, restart index), strict,
        // so the earliest restart wins ties at every thread count.
        let best = candidates
            .into_iter()
            .reduce(|best, next| if next.0 < best.0 { next } else { best })
            .expect("at least one restart ran");
        Plan::new(task, best.1, self.config.params)
    }

    fn name(&self) -> &'static str {
        "randomized_greedy"
    }

    fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name().hash(&mut h);
        super::hash_planner_config(&mut h, &self.config);
        (self.permutations, self.seed, self.restarts).hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::{LoadBalancePlanner, NaivePlanner};
    use super::*;

    #[test]
    fn covers_all_units_once() {
        let t = task("S0RR", "S01RR", &[16, 8, 8]);
        let plan = RandomizedGreedyPlanner::new(config()).plan(&t);
        assert_eq!(plan.assignments().len(), t.units().len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t = task("RS0R", "S0RR", &[16, 8, 8]);
        let p = RandomizedGreedyPlanner::new(config()).with_seed(7);
        let a = p.plan(&t);
        let b = p.plan(&t);
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn rounds_are_conflict_free() {
        // Within the schedule, consecutive assignments picked in the same
        // round share no host; verify via estimate <= serial sum.
        let t = task("RS0R", "S0RR", &[16, 16, 8]);
        let plan = RandomizedGreedyPlanner::new(config()).plan(&t);
        let serial: f64 = plan
            .assignments()
            .iter()
            .map(|a| {
                crossmesh_collectives::estimate_unit_task(
                    &config().params,
                    &t.units()[a.unit],
                    a.sender_host,
                    a.strategy,
                )
            })
            .sum();
        assert!(plan.estimate() <= serial + 1e-9);
    }

    #[test]
    fn beats_or_matches_naive_and_lpt_on_case3_like_workloads() {
        // Case 3 of Table 2 (RS^0R -> S^0RR) is where the paper's ordering
        // wins: reordering lets both sender nodes transmit concurrently.
        let c = cluster();
        let t = task("RS0R", "S0RR", &[32, 32, 8]);
        let greedy = RandomizedGreedyPlanner::new(config())
            .plan(&t)
            .execute(&c)
            .unwrap()
            .simulated_seconds;
        let naive = NaivePlanner::new(config())
            .plan(&t)
            .execute(&c)
            .unwrap()
            .simulated_seconds;
        let lpt = LoadBalancePlanner::new(config())
            .plan(&t)
            .execute(&c)
            .unwrap()
            .simulated_seconds;
        assert!(greedy <= naive * 1.01, "greedy {greedy} vs naive {naive}");
        assert!(greedy <= lpt * 1.01, "greedy {greedy} vs lpt {lpt}");
    }

    #[test]
    #[should_panic(expected = "at least one permutation")]
    fn zero_permutations_panics() {
        let _ = RandomizedGreedyPlanner::new(config()).with_permutations(0);
    }

    #[test]
    #[should_panic(expected = "at least one restart")]
    fn zero_restarts_panics() {
        let _ = RandomizedGreedyPlanner::new(config()).with_restarts(0);
    }

    #[test]
    fn more_restarts_never_hurt() {
        let t = task("RS0R", "S01RR", &[16, 8, 8]);
        let one = RandomizedGreedyPlanner::new(config())
            .with_restarts(1)
            .plan(&t)
            .estimate();
        let eight = RandomizedGreedyPlanner::new(config())
            .with_restarts(8)
            .plan(&t)
            .estimate();
        assert!(eight <= one + 1e-9, "restarts made the plan worse");
    }

    #[test]
    fn identical_across_thread_counts() {
        let t = task("RS1R", "S01RR", &[16, 8, 8]);
        let planner = RandomizedGreedyPlanner::new(config()).with_restarts(8);
        let baseline = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| planner.plan(&t));
        for threads in [2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let plan = pool.install(|| planner.plan(&t));
            assert_eq!(
                plan.assignments(),
                baseline.assignments(),
                "threads = {threads}"
            );
        }
    }
}
