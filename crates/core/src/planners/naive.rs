//! The naive baseline: lowest-index sender, arbitrary (index) order.

use super::{replica_on, Planner, PlannerConfig};
use crate::plan::{Assignment, Plan};
use crate::task::ReshardingTask;

/// The paper's naive baseline (§3.2): every unit task is sent by the
/// first (lowest-indexed) replica host, in an arbitrary global order (we
/// use unit-index order). No load balancing, no scheduling.
#[derive(Debug, Clone, Default)]
pub struct NaivePlanner {
    config: PlannerConfig,
}

impl NaivePlanner {
    /// Creates the planner with the given configuration.
    pub fn new(config: PlannerConfig) -> Self {
        NaivePlanner { config }
    }
}

impl Planner for NaivePlanner {
    fn plan<'t>(&self, task: &'t ReshardingTask) -> Plan<'t> {
        let assignments = task
            .units()
            .iter()
            .enumerate()
            .map(|(i, unit)| {
                let host = unit.sender_hosts()[0];
                Assignment {
                    unit: i,
                    sender: replica_on(unit, host),
                    sender_host: host,
                    strategy: self.config.strategy.resolve(unit),
                }
            })
            .collect();
        Plan::new(task, assignments, self.config.params)
    }

    fn name(&self) -> &'static str {
        "naive"
    }

    fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name().hash(&mut h);
        super::hash_planner_config(&mut h, &self.config);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crossmesh_netsim::HostId;

    #[test]
    fn always_picks_lowest_host() {
        // RRR source: every host replicates, naive always sends from host 0.
        let t = task("RRR", "S0RR", &[8, 8, 8]);
        let plan = NaivePlanner::new(config()).plan(&t);
        for a in plan.assignments() {
            assert_eq!(a.sender_host, HostId(0));
        }
    }

    #[test]
    fn order_is_unit_index_order() {
        let t = task("S0RR", "S1RR", &[8, 8, 8]);
        let plan = NaivePlanner::new(config()).plan(&t);
        let order: Vec<usize> = plan.assignments().iter().map(|a| a.unit).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }

    #[test]
    fn executes_on_the_simulator() {
        let c = cluster();
        let t = task("S0RR", "S0RR", &[8, 8, 8]);
        let report = NaivePlanner::new(config()).plan(&t).execute(&c).unwrap();
        assert!(report.simulated_seconds > 0.0);
    }
}
