//! Depth-first search over sender assignments with lower-bound pruning.

use super::{replica_on, LoadBalancePlanner, Planner, PlannerConfig};
use crate::plan::{involved_hosts, Assignment, Plan};
use crate::task::ReshardingTask;
use crossmesh_collectives::estimate_unit_task;
use crossmesh_netsim::HostId;
use crossmesh_obs as obs;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Registry handles for the DFS search, resolved once. The hot search loop
/// counts into plain locals; each branch flushes its totals with a handful
/// of sharded-counter adds, so observation never perturbs search order.
struct DfsMetrics {
    plans: obs::Counter,
    branches: obs::Counter,
    branch_skips: obs::Counter,
    nodes: obs::Counter,
    pruned: obs::Counter,
}

fn dfs_metrics() -> &'static DfsMetrics {
    static METRICS: OnceLock<DfsMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let m = obs::metrics();
        DfsMetrics {
            plans: m.counter("planner.dfs.plans"),
            branches: m.counter("planner.dfs.branches"),
            branch_skips: m.counter("planner.dfs.branch_skips"),
            nodes: m.counter("planner.dfs.nodes"),
            pruned: m.counter("planner.dfs.pruned"),
        }
    })
}

/// The paper's "DFS with pruning" (§3.2): a depth-first search over sender
/// assignments. Partial assignments are pruned when the heaviest sender
/// load already reaches the best known makespan (the Eq. 4 lower bound);
/// each complete assignment is turned into a schedule with an
/// earliest-start list scheduler and evaluated analytically.
///
/// The search is bounded by a node budget; the paper notes the exact search
/// stops being useful beyond ~20 unit tasks, which is why the ensemble also
/// runs the randomized greedy.
///
/// # Parallelism and determinism
///
/// The search splits at the shallowest tree levels into independent
/// *branches* (fixed sender choices for the first one or two items) that
/// run on the current rayon pool. Each branch gets a fixed share of the
/// node budget and its own bound, seeded from the LPT estimate, so its
/// result depends only on the branch — never on thread timing. A shared
/// atomic best-makespan is consulted *only* to skip a whole branch whose
/// load lower bound strictly exceeds another branch's published result;
/// such a branch can never win the final `(estimate, branch index)`
/// reduction, so skipping it is invisible in the output. The plan is
/// therefore byte-identical across thread counts.
#[derive(Debug, Clone)]
pub struct DfsPlanner {
    config: PlannerConfig,
    node_budget: usize,
}

impl Default for DfsPlanner {
    fn default() -> Self {
        DfsPlanner {
            config: PlannerConfig::default(),
            node_budget: 100_000,
        }
    }
}

impl DfsPlanner {
    /// Creates the planner with the default node budget (100 000 nodes).
    pub fn new(config: PlannerConfig) -> Self {
        DfsPlanner {
            config,
            node_budget: 100_000,
        }
    }

    /// Returns a copy with the node budget replaced.
    #[must_use]
    pub fn with_node_budget(mut self, budget: usize) -> Self {
        self.node_budget = budget.max(1);
        self
    }
}

/// How many top-of-tree branches the search is split into (at least — the
/// last expanded level may overshoot). A constant rather than the pool
/// size: the decomposition must not depend on how many threads happen to
/// run it. 16 gives an 8-thread pool two branches per thread to balance
/// uneven subtree costs.
const BRANCH_TARGET: usize = 16;

/// One sender candidate of a search item, with everything the hot loop
/// needs precomputed: the dense host slot it loads, its analytic duration,
/// and the dense slots of every host the transfer occupies (ascending host
/// order, matching [`involved_hosts`]).
struct Cand {
    host: HostId,
    slot: u32,
    duration: f64,
    involved: Vec<u32>,
}

/// One unit task in search order with its candidate senders.
struct Item {
    unit: usize,
    cands: Vec<Cand>,
}

/// Immutable search context shared by every branch.
struct SearchCtx<'t, 'c> {
    task: &'t ReshardingTask,
    config: &'c PlannerConfig,
    items: Vec<Item>,
    n_slots: usize,
    seed_est: f64,
}

impl<'t, 'c> SearchCtx<'t, 'c> {
    fn build(task: &'t ReshardingTask, config: &'c PlannerConfig, seed_est: f64) -> Self {
        // Dense host -> slot mapping over every host any candidate touches,
        // in ascending host order so slot order == host order.
        let mut slots: BTreeMap<HostId, u32> = BTreeMap::new();
        for unit in task.units() {
            for h in unit.sender_hosts() {
                for ih in involved_hosts(unit, h) {
                    let next = slots.len() as u32;
                    slots.entry(ih).or_insert(next);
                }
            }
        }
        let mut items: Vec<Item> = task
            .units()
            .iter()
            .enumerate()
            .map(|(i, unit)| {
                let strategy = config.strategy.resolve(unit);
                let cands = unit
                    .sender_hosts()
                    .into_iter()
                    .map(|h| Cand {
                        host: h,
                        slot: slots[&h],
                        duration: estimate_unit_task(&config.params, unit, h, strategy),
                        involved: involved_hosts(unit, h).iter().map(|ih| slots[ih]).collect(),
                    })
                    .collect();
                Item { unit: i, cands }
            })
            .collect();
        // Longest first: prunes earlier.
        items.sort_by(|a, b| {
            let da = a
                .cands
                .iter()
                .map(|c| c.duration)
                .fold(f64::INFINITY, f64::min);
            let db = b
                .cands
                .iter()
                .map(|c| c.duration)
                .fold(f64::INFINITY, f64::min);
            db.total_cmp(&da).then(a.unit.cmp(&b.unit))
        });
        SearchCtx {
            task,
            config,
            items,
            n_slots: slots.len(),
            seed_est,
        }
    }

    /// Enumerates the top-of-tree branches: every candidate combination for
    /// a prefix of items, the prefix grown until there are at least
    /// [`BRANCH_TARGET`] branches (or the items run out). The target is a
    /// constant — NOT the pool size — so the decomposition, the per-branch
    /// budget shares, and therefore the search result are identical at
    /// every thread count; the pool only decides how many branches run
    /// concurrently.
    fn branches(&self) -> Vec<Vec<u32>> {
        let target = BRANCH_TARGET;
        let mut depth = 0usize;
        let mut count = 1usize;
        while depth < self.items.len() && count < target {
            count = count.saturating_mul(self.items[depth].cands.len().max(1));
            depth += 1;
        }
        let mut branches: Vec<Vec<u32>> = vec![Vec::new()];
        for item in &self.items[..depth] {
            let mut next = Vec::with_capacity(branches.len() * item.cands.len());
            for prefix in &branches {
                for ci in 0..item.cands.len() as u32 {
                    let mut p = prefix.clone();
                    p.push(ci);
                    next.push(p);
                }
            }
            branches = next;
        }
        branches
    }

    /// Runs one branch to completion with its own budget share. Returns the
    /// branch's best `(makespan estimate, per-item candidate choice)` if it
    /// improved on the LPT seed.
    fn run_branch(
        &self,
        prefix: &[u32],
        budget: usize,
        shared_best: &AtomicU64,
    ) -> Option<(f64, Vec<u32>)> {
        let metrics = dfs_metrics();
        let mut load = vec![0.0f64; self.n_slots];
        let mut branch_lb = 0.0f64;
        for (depth, &ci) in prefix.iter().enumerate() {
            let c = &self.items[depth].cands[ci as usize];
            load[c.slot as usize] += c.duration;
            if load[c.slot as usize] >= self.seed_est {
                // The sequential bound (which every branch starts from)
                // already prunes this prefix — deterministic skip.
                metrics.branch_skips.inc();
                return None;
            }
            branch_lb = branch_lb.max(load[c.slot as usize]);
        }
        // Opportunistic skip: every leaf under this prefix has makespan
        // >= branch_lb, so a *strictly* smaller published result from some
        // other branch proves this branch cannot win the reduction. Timing
        // only decides whether we skip, never what the reduction returns.
        if branch_lb > f64::from_bits(shared_best.load(Ordering::Relaxed)) {
            metrics.branch_skips.inc();
            return None;
        }
        let n = self.items.len();
        let mut search = BranchSearch {
            ctx: self,
            load,
            chosen: {
                let mut v = vec![0u32; n];
                v[..prefix.len()].copy_from_slice(prefix);
                v
            },
            nodes_left: budget,
            best_est: self.seed_est,
            best_choice: None,
            order_scratch: vec![Vec::new(); n],
            cursor: vec![0.0f64; self.n_slots],
            remaining: Vec::with_capacity(n),
            pruned: 0,
        };
        search.dfs(prefix.len());
        metrics.nodes.add((budget - search.nodes_left) as u64);
        metrics.pruned.add(search.pruned);
        let best_est = search.best_est;
        search.best_choice.map(|choice| {
            shared_best.fetch_min(best_est.to_bits(), Ordering::Relaxed);
            (best_est, choice)
        })
    }

    /// Builds the ordered assignments for a complete choice using an
    /// earliest-start list schedule over host availability, returning the
    /// assignments and their makespan. Each candidate's start is computed
    /// once per selection scan.
    fn schedule_choice(&self, choice: &[u32]) -> (Vec<Assignment>, f64) {
        let mut cursor = vec![0.0f64; self.n_slots];
        let mut remaining: Vec<u32> = (0..self.items.len() as u32).collect();
        let mut out = Vec::with_capacity(self.items.len());
        let mut makespan = 0.0f64;
        while !remaining.is_empty() {
            let (pos, start) = self.next_scheduled(&cursor, &remaining, choice);
            let it = remaining.swap_remove(pos) as usize;
            let item = &self.items[it];
            let c = &item.cands[choice[it] as usize];
            let finish = start + c.duration;
            for &s in &c.involved {
                cursor[s as usize] = finish;
            }
            makespan = makespan.max(finish);
            let unit = &self.task.units()[item.unit];
            out.push(Assignment {
                unit: item.unit,
                sender: replica_on(unit, c.host),
                sender_host: c.host,
                strategy: self.config.strategy.resolve(unit),
            });
        }
        (out, makespan)
    }

    /// Selects the next list-schedule entry: minimal `(earliest start,
    /// -duration, unit)`. Returns its position in `remaining` and its
    /// start time.
    fn next_scheduled(&self, cursor: &[f64], remaining: &[u32], choice: &[u32]) -> (usize, f64) {
        let mut best_pos = 0usize;
        let mut best: Option<(f64, f64, usize)> = None;
        for (pos, &it) in remaining.iter().enumerate() {
            let item = &self.items[it as usize];
            let c = &item.cands[choice[it as usize] as usize];
            let start = c
                .involved
                .iter()
                .map(|&s| cursor[s as usize])
                .fold(0.0, f64::max);
            let key = (start, -c.duration, item.unit);
            let better = match &best {
                None => true,
                Some(b) => key
                    .0
                    .total_cmp(&b.0)
                    .then(key.1.total_cmp(&b.1))
                    .then(key.2.cmp(&b.2))
                    .is_lt(),
            };
            if better {
                best = Some(key);
                best_pos = pos;
            }
        }
        (best_pos, best.expect("remaining is non-empty").0)
    }
}

/// Mutable per-branch search state; all buffers are reused across nodes.
struct BranchSearch<'a, 't, 'c> {
    ctx: &'a SearchCtx<'t, 'c>,
    /// Accumulated duration per host slot.
    load: Vec<f64>,
    /// Candidate index per item (prefix fixed, rest in flux).
    chosen: Vec<u32>,
    nodes_left: usize,
    best_est: f64,
    best_choice: Option<Vec<u32>>,
    /// Per-depth candidate-order buffers (avoids per-node allocation).
    order_scratch: Vec<Vec<u32>>,
    /// Leaf-evaluation host cursors.
    cursor: Vec<f64>,
    /// Leaf-evaluation worklist.
    remaining: Vec<u32>,
    /// Eq. 4 lower-bound prune edges taken, flushed to the metrics
    /// registry when the branch finishes.
    pruned: u64,
}

impl BranchSearch<'_, '_, '_> {
    fn dfs(&mut self, depth: usize) {
        if self.nodes_left == 0 {
            return;
        }
        self.nodes_left -= 1;

        if depth == self.ctx.items.len() {
            let est = self.eval_leaf();
            if est < self.best_est {
                self.best_est = est;
                self.best_choice = Some(self.chosen.clone());
            }
            return;
        }

        // Try lighter hosts first to reach good leaves early.
        let item = &self.ctx.items[depth];
        let mut order = std::mem::take(&mut self.order_scratch[depth]);
        order.clear();
        order.extend(0..item.cands.len() as u32);
        order.sort_by(|&a, &b| {
            let ca = &item.cands[a as usize];
            let cb = &item.cands[b as usize];
            let la = self.load[ca.slot as usize] + ca.duration;
            let lb = self.load[cb.slot as usize] + cb.duration;
            la.total_cmp(&lb).then(ca.host.cmp(&cb.host))
        });
        for &ci in &order {
            let (slot, duration) = {
                let c = &item.cands[ci as usize];
                (c.slot as usize, c.duration)
            };
            let new_load = self.load[slot] + duration;
            if new_load >= self.best_est {
                self.pruned += 1;
                continue; // Eq. 4 lower bound: this host alone busts the best.
            }
            self.load[slot] += duration;
            self.chosen[depth] = ci;
            self.dfs(depth + 1);
            self.load[slot] -= duration;
        }
        self.order_scratch[depth] = order;
    }

    /// Evaluates the current complete choice: the makespan of its
    /// earliest-start list schedule, computed incrementally over the reused
    /// cursor buffer — no plan construction, no candidate rescans.
    fn eval_leaf(&mut self) -> f64 {
        self.cursor.fill(0.0);
        self.remaining.clear();
        self.remaining.extend(0..self.ctx.items.len() as u32);
        let mut makespan = 0.0f64;
        while !self.remaining.is_empty() {
            let (pos, start) = self
                .ctx
                .next_scheduled(&self.cursor, &self.remaining, &self.chosen);
            let it = self.remaining.swap_remove(pos) as usize;
            let c = &self.ctx.items[it].cands[self.chosen[it] as usize];
            let finish = start + c.duration;
            for &s in &c.involved {
                self.cursor[s as usize] = finish;
            }
            makespan = makespan.max(finish);
        }
        makespan
    }
}

impl Planner for DfsPlanner {
    fn plan<'t>(&self, task: &'t ReshardingTask) -> Plan<'t> {
        let span = obs::Span::enter(
            obs::Level::Debug,
            "planner.dfs",
            "plan",
            &[obs::Field::u64("units", task.units().len() as u64)],
        );
        // Start from the LPT solution: the search can only improve on it.
        let seed_plan = LoadBalancePlanner::new(self.config).plan(task);
        let seed_est = seed_plan.estimate();
        if task.units().is_empty() {
            return seed_plan;
        }

        let metrics = dfs_metrics();
        metrics.plans.inc();
        let ctx = SearchCtx::build(task, &self.config, seed_est);
        let branches = ctx.branches();
        let k = branches.len();
        metrics.branches.add(k as u64);
        span.record(&[obs::Field::u64("branches", k as u64)]);
        let shared_best = AtomicU64::new(seed_est.to_bits());
        let budget = self.node_budget;
        let jobs: Vec<(usize, Vec<u32>)> = branches.into_iter().enumerate().collect();
        let results: Vec<Option<(f64, Vec<u32>)>> = jobs
            .par_iter()
            .map(|(i, prefix)| {
                // Fixed, thread-count-independent budget share per branch.
                let share = budget / k + usize::from(*i < budget % k);
                ctx.run_branch(prefix, share, &shared_best)
            })
            .collect();

        // Deterministic reduction: min (estimate, branch index), strict, so
        // the earliest branch wins ties.
        let mut best: Option<(f64, Vec<u32>)> = None;
        for result in results.into_iter().flatten() {
            let better = match &best {
                None => true,
                Some((est, _)) => result.0 < *est,
            };
            if better {
                best = Some(result);
            }
        }
        match best {
            Some((est, choice)) => {
                let (assignments, makespan) = ctx.schedule_choice(&choice);
                debug_assert!(
                    (makespan - est).abs() <= 1e-12 * est.abs().max(1.0),
                    "leaf evaluation diverged from the materialized schedule"
                );
                Plan::new(task, assignments, self.config.params)
            }
            None => seed_plan,
        }
    }

    fn name(&self) -> &'static str {
        "dfs"
    }

    fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name().hash(&mut h);
        super::hash_planner_config(&mut h, &self.config);
        self.node_budget.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::NaivePlanner;
    use super::*;

    #[test]
    fn never_worse_than_lpt() {
        for (src, dst) in [("RRR", "S0RR"), ("S0RR", "S1RR"), ("RS0R", "S0RR")] {
            let t = task(src, dst, &[16, 8, 8]);
            let dfs = DfsPlanner::new(config()).plan(&t).estimate();
            let lpt = LoadBalancePlanner::new(config()).plan(&t).estimate();
            assert!(dfs <= lpt + 1e-9, "{src}->{dst}: dfs {dfs} vs lpt {lpt}");
        }
    }

    #[test]
    fn improves_on_naive_for_replicated_sources() {
        let c = cluster();
        let t = task("RRR", "S1RR", &[16, 8, 8]);
        let dfs = DfsPlanner::new(config()).plan(&t).execute(&c).unwrap();
        let naive = NaivePlanner::new(config()).plan(&t).execute(&c).unwrap();
        assert!(dfs.simulated_seconds <= naive.simulated_seconds + 1e-9);
    }

    #[test]
    fn budget_of_one_still_returns_a_valid_plan() {
        let t = task("S0RR", "S01RR", &[8, 8, 8]);
        let planner = DfsPlanner::new(config()).with_node_budget(1);
        let plan = planner.plan(&t);
        assert_eq!(plan.assignments().len(), t.units().len());
    }

    #[test]
    fn respects_estimate_lower_bound() {
        let t = task("RS0R", "S0RR", &[8, 8, 8]);
        let plan = DfsPlanner::new(config()).plan(&t);
        assert!(plan.lower_bound() <= plan.estimate() + 1e-9);
    }

    /// The pre-optimization `leaf_assignments`: recomputes each candidate's
    /// involved hosts and start twice per placement. Kept as the reference
    /// the incremental scheduler must match exactly.
    fn reference_leaf_assignments(
        task: &crate::ReshardingTask,
        config: &PlannerConfig,
        entries: Vec<(usize, HostId, f64)>,
    ) -> Vec<Assignment> {
        let mut cursor: BTreeMap<HostId, f64> = BTreeMap::new();
        let mut remaining = entries;
        let mut out = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .map(|(pos, &(unit, host, duration))| {
                    let hosts = involved_hosts(&task.units()[unit], host);
                    let start = hosts
                        .iter()
                        .map(|h| cursor.get(h).copied().unwrap_or(0.0))
                        .fold(0.0, f64::max);
                    (pos, (start, -duration, unit))
                })
                .min_by(|a, b| {
                    a.1 .0
                        .total_cmp(&b.1 .0)
                        .then(a.1 .1.total_cmp(&b.1 .1))
                        .then(a.1 .2.cmp(&b.1 .2))
                })
                .expect("remaining is non-empty");
            let (unit, host, duration) = remaining.swap_remove(pos);
            let hosts = involved_hosts(&task.units()[unit], host);
            let start = hosts
                .iter()
                .map(|h| cursor.get(h).copied().unwrap_or(0.0))
                .fold(0.0, f64::max);
            for h in hosts {
                cursor.insert(h, start + duration);
            }
            let u = &task.units()[unit];
            out.push(Assignment {
                unit,
                sender: replica_on(u, host),
                sender_host: host,
                strategy: config.strategy.resolve(u),
            });
        }
        out
    }

    #[test]
    fn incremental_schedule_matches_the_old_rescanning_one() {
        for (src, dst, shape) in [
            ("RRR", "S0RR", [16u64, 8, 8]),
            ("RS0R", "S0RR", [8, 8, 8]),
            ("S0RR", "S01RR", [16, 8, 8]),
            ("RS1R", "S0RR", [8, 8, 8]),
        ] {
            let t = task(src, dst, &shape);
            let cfg = config();
            let ctx = SearchCtx::build(&t, &cfg, f64::INFINITY);
            // Exercise every first-candidate choice plus a rotated one.
            for rot in 0..2usize {
                let choice: Vec<u32> = ctx
                    .items
                    .iter()
                    .map(|it| (rot % it.cands.len()) as u32)
                    .collect();
                let entries: Vec<(usize, HostId, f64)> = ctx
                    .items
                    .iter()
                    .zip(&choice)
                    .map(|(it, &ci)| {
                        let c = &it.cands[ci as usize];
                        (it.unit, c.host, c.duration)
                    })
                    .collect();
                let expected = reference_leaf_assignments(&t, &cfg, entries);
                let (got, makespan) = ctx.schedule_choice(&choice);
                assert_eq!(got, expected, "{src}->{dst} rot {rot}");
                let plan_est = Plan::new(&t, got, cfg.params).estimate();
                assert_eq!(
                    makespan.to_bits(),
                    plan_est.to_bits(),
                    "incremental makespan must equal the plan estimate"
                );
            }
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let t = task("RS1R", "S01RR", &[16, 8, 8]);
        let planner = DfsPlanner::new(config());
        let baseline = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| planner.plan(&t));
        for threads in [2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let plan = pool.install(|| planner.plan(&t));
            assert_eq!(
                plan.assignments(),
                baseline.assignments(),
                "threads = {threads}"
            );
        }
    }
}
