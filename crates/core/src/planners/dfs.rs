//! Depth-first search over sender assignments with lower-bound pruning.

use super::{replica_on, LoadBalancePlanner, Planner, PlannerConfig};
use crate::plan::{involved_hosts, Assignment, Plan};
use crate::task::ReshardingTask;
use crossmesh_collectives::estimate_unit_task;
use crossmesh_netsim::HostId;
use std::collections::BTreeMap;

/// The paper's "DFS with pruning" (§3.2): a depth-first search over sender
/// assignments. Partial assignments are pruned when the heaviest sender
/// load already reaches the best known makespan (the Eq. 4 lower bound);
/// each complete assignment is turned into a schedule with an
/// earliest-start list scheduler and evaluated analytically.
///
/// The search is bounded by a node budget; the paper notes the exact search
/// stops being useful beyond ~20 unit tasks, which is why the ensemble also
/// runs the randomized greedy.
#[derive(Debug, Clone)]
pub struct DfsPlanner {
    config: PlannerConfig,
    node_budget: usize,
}

impl Default for DfsPlanner {
    fn default() -> Self {
        DfsPlanner {
            config: PlannerConfig::default(),
            node_budget: 100_000,
        }
    }
}

impl DfsPlanner {
    /// Creates the planner with the default node budget (100 000 nodes).
    pub fn new(config: PlannerConfig) -> Self {
        DfsPlanner {
            config,
            node_budget: 100_000,
        }
    }

    /// Returns a copy with the node budget replaced.
    #[must_use]
    pub fn with_node_budget(mut self, budget: usize) -> Self {
        self.node_budget = budget.max(1);
        self
    }
}

struct Search<'t, 'c> {
    task: &'t ReshardingTask,
    config: &'c PlannerConfig,
    /// Unit indices in search order with per-candidate (host, duration).
    items: Vec<(usize, Vec<(HostId, f64)>)>,
    nodes_left: usize,
    best_est: f64,
    best: Option<Vec<Assignment>>,
    chosen: Vec<(HostId, f64)>,
    load: BTreeMap<HostId, f64>,
}

impl<'t> Search<'t, '_> {
    fn dfs(&mut self, depth: usize) {
        if self.nodes_left == 0 {
            return;
        }
        self.nodes_left -= 1;

        if depth == self.items.len() {
            let assignments = self.leaf_assignments();
            let plan = Plan::new(self.task, assignments.clone(), self.config.params);
            let est = plan.estimate();
            if est < self.best_est {
                self.best_est = est;
                self.best = Some(assignments);
            }
            return;
        }

        // Try lighter hosts first to reach good leaves early.
        let mut candidates = self.items[depth].1.clone();
        candidates.sort_by(|&(ha, da), &(hb, db)| {
            let la = self.load.get(&ha).copied().unwrap_or(0.0) + da;
            let lb = self.load.get(&hb).copied().unwrap_or(0.0) + db;
            la.total_cmp(&lb).then(ha.cmp(&hb))
        });
        for (host, duration) in candidates {
            let new_load = self.load.get(&host).copied().unwrap_or(0.0) + duration;
            if new_load >= self.best_est {
                continue; // Eq. 4 lower bound: this host alone busts the best.
            }
            *self.load.entry(host).or_insert(0.0) += duration;
            self.chosen.push((host, duration));
            self.dfs(depth + 1);
            self.chosen.pop();
            *self.load.get_mut(&host).expect("host load present") -= duration;
        }
    }

    /// Builds the ordered assignments for the current complete choice using
    /// an earliest-start list schedule over host availability.
    fn leaf_assignments(&self) -> Vec<Assignment> {
        let entries: Vec<(usize, HostId, f64)> = self
            .items
            .iter()
            .zip(&self.chosen)
            .map(|(&(unit, _), &(host, duration))| (unit, host, duration))
            .collect();
        let mut cursor: BTreeMap<HostId, f64> = BTreeMap::new();
        let mut remaining: Vec<(usize, HostId, f64)> = entries;
        let mut out = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .map(|(pos, &(unit, host, duration))| {
                    let hosts = involved_hosts(&self.task.units()[unit], host);
                    let start = hosts
                        .iter()
                        .map(|h| cursor.get(h).copied().unwrap_or(0.0))
                        .fold(0.0, f64::max);
                    (pos, (start, -duration, unit))
                })
                .min_by(|a, b| {
                    a.1 .0
                        .total_cmp(&b.1 .0)
                        .then(a.1 .1.total_cmp(&b.1 .1))
                        .then(a.1 .2.cmp(&b.1 .2))
                })
                .expect("remaining is non-empty");
            let (unit, host, duration) = remaining.swap_remove(pos);
            let hosts = involved_hosts(&self.task.units()[unit], host);
            let start = hosts
                .iter()
                .map(|h| cursor.get(h).copied().unwrap_or(0.0))
                .fold(0.0, f64::max);
            for h in hosts {
                cursor.insert(h, start + duration);
            }
            let u = &self.task.units()[unit];
            out.push(Assignment {
                unit,
                sender: replica_on(u, host),
                sender_host: host,
                strategy: self.config.strategy.resolve(u),
            });
        }
        out
    }
}

impl Planner for DfsPlanner {
    fn plan<'t>(&self, task: &'t ReshardingTask) -> Plan<'t> {
        // Start from the LPT solution: the search can only improve on it.
        let seed_plan = LoadBalancePlanner::new(self.config).plan(task);
        let seed_est = seed_plan.estimate();

        let mut items: Vec<(usize, Vec<(HostId, f64)>)> = task
            .units()
            .iter()
            .enumerate()
            .map(|(i, unit)| {
                let strategy = self.config.strategy.resolve(unit);
                let cands = unit
                    .sender_hosts()
                    .into_iter()
                    .map(|h| {
                        (
                            h,
                            estimate_unit_task(&self.config.params, unit, h, strategy),
                        )
                    })
                    .collect();
                (i, cands)
            })
            .collect();
        // Longest first: prunes earlier.
        items.sort_by(|a, b| {
            let da = a.1.iter().map(|&(_, d)| d).fold(f64::INFINITY, f64::min);
            let db = b.1.iter().map(|&(_, d)| d).fold(f64::INFINITY, f64::min);
            db.total_cmp(&da).then(a.0.cmp(&b.0))
        });

        let mut search = Search {
            task,
            config: &self.config,
            items,
            nodes_left: self.node_budget,
            best_est: seed_est,
            best: None,
            chosen: Vec::new(),
            load: BTreeMap::new(),
        };
        search.dfs(0);
        match search.best {
            Some(assignments) => Plan::new(task, assignments, self.config.params),
            None => seed_plan,
        }
    }

    fn name(&self) -> &'static str {
        "dfs"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::NaivePlanner;
    use super::*;

    #[test]
    fn never_worse_than_lpt() {
        for (src, dst) in [("RRR", "S0RR"), ("S0RR", "S1RR"), ("RS0R", "S0RR")] {
            let t = task(src, dst, &[16, 8, 8]);
            let dfs = DfsPlanner::new(config()).plan(&t).estimate();
            let lpt = LoadBalancePlanner::new(config()).plan(&t).estimate();
            assert!(dfs <= lpt + 1e-9, "{src}->{dst}: dfs {dfs} vs lpt {lpt}");
        }
    }

    #[test]
    fn improves_on_naive_for_replicated_sources() {
        let c = cluster();
        let t = task("RRR", "S1RR", &[16, 8, 8]);
        let dfs = DfsPlanner::new(config()).plan(&t).execute(&c).unwrap();
        let naive = NaivePlanner::new(config()).plan(&t).execute(&c).unwrap();
        assert!(dfs.simulated_seconds <= naive.simulated_seconds + 1e-9);
    }

    #[test]
    fn budget_of_one_still_returns_a_valid_plan() {
        let t = task("S0RR", "S01RR", &[8, 8, 8]);
        let planner = DfsPlanner::new(config()).with_node_budget(1);
        let plan = planner.plan(&t);
        assert_eq!(plan.assignments().len(), t.units().len());
    }

    #[test]
    fn respects_estimate_lower_bound() {
        let t = task("RS0R", "S0RR", &[8, 8, 8]);
        let plan = DfsPlanner::new(config()).plan(&t);
        assert!(plan.lower_bound() <= plan.estimate() + 1e-9);
    }
}
