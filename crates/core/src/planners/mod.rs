//! Load balancing and scheduling algorithms (paper §3.2).

mod dfs;
mod ensemble;
mod greedy;
mod load_balance;
mod naive;

pub use dfs::DfsPlanner;
pub use ensemble::EnsemblePlanner;
pub use greedy::RandomizedGreedyPlanner;
pub use load_balance::LoadBalancePlanner;
pub use naive::NaivePlanner;

use crate::exclusions::{RepairError, SenderExclusions};
use crate::plan::Plan;
use crate::task::ReshardingTask;
use crossmesh_collectives::{alpa_effective_strategy, CostParams, Strategy};
use crossmesh_mesh::UnitTask;
use crossmesh_netsim::{DeviceId, HostId};
use serde::{Deserialize, Serialize};

/// How the planner picks a communication strategy per unit task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyChoice {
    /// Use the same strategy for every unit task.
    Fixed(Strategy),
    /// Emulate the Alpa baseline: global all-gather when the slice splits
    /// evenly over the receivers, plain send/recv otherwise.
    AlpaAuto,
}

impl StrategyChoice {
    /// Resolves the strategy for one unit task.
    pub fn resolve(&self, unit: &UnitTask) -> Strategy {
        match self {
            StrategyChoice::Fixed(s) => *s,
            StrategyChoice::AlpaAuto => alpa_effective_strategy(unit),
        }
    }
}

/// Shared planner configuration: cost parameters for duration estimates and
/// the strategy choice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Bandwidths/latencies used for the analytic duration estimates.
    pub params: CostParams,
    /// Strategy used to lower each unit task.
    pub strategy: StrategyChoice,
}

impl Default for PlannerConfig {
    /// Defaults to the paper's evaluation cluster class (NVLink-class
    /// intra-host, 10 Gbps inter-host) and the broadcast strategy.
    fn default() -> Self {
        PlannerConfig {
            params: CostParams {
                inter_bw: 1.25e9,
                intra_bw: 100e9,
                inter_latency: 25e-6,
                intra_latency: 5e-6,
            },
            strategy: StrategyChoice::Fixed(Strategy::broadcast()),
        }
    }
}

impl PlannerConfig {
    /// A config with the given cost parameters and the default broadcast
    /// strategy.
    pub fn new(params: CostParams) -> Self {
        PlannerConfig {
            params,
            strategy: StrategyChoice::Fixed(Strategy::broadcast()),
        }
    }

    /// Returns a copy with the strategy choice replaced.
    #[must_use]
    pub fn with_strategy(mut self, strategy: StrategyChoice) -> Self {
        self.strategy = strategy;
        self
    }
}

/// A load-balancing and scheduling algorithm: turns a resharding task into
/// an ordered, sender-assigned [`Plan`].
pub trait Planner {
    /// Produces a plan covering every unit task exactly once.
    fn plan<'t>(&self, task: &'t ReshardingTask) -> Plan<'t>;

    /// A short name for reports and figures.
    fn name(&self) -> &'static str;

    /// A stable fingerprint of the planner's identity and configuration,
    /// mixed into [`PlanCache`](crate::PlanCache) keys so
    /// differently-configured planners never share cache entries.
    ///
    /// The default hashes only [`name`](Planner::name); planners with
    /// tunable knobs (budgets, seeds, cost parameters) override it to
    /// include them.
    fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        use std::hash::{Hash, Hasher};
        self.name().hash(&mut h);
        h.finish()
    }
}

/// Hashes a [`PlannerConfig`] into `h` for planner fingerprints: cost
/// parameters bit-exactly, the strategy via its debug form.
pub(crate) fn hash_planner_config<H: std::hash::Hasher>(h: &mut H, config: &PlannerConfig) {
    use std::hash::Hash;
    config.params.inter_bw.to_bits().hash(h);
    config.params.intra_bw.to_bits().hash(h);
    config.params.inter_latency.to_bits().hash(h);
    config.params.intra_latency.to_bits().hash(h);
    format!("{:?}", config.strategy).hash(h);
}

/// Runs `planner` on the task with the excluded senders removed, then
/// re-binds the resulting plan to the original task (every surviving
/// sender is a replica of the original units, so the plan stays valid).
///
/// This is how any planner solves the §3.2 problem "with failed senders
/// excluded from each N_i" without knowing about faults itself.
///
/// # Errors
///
/// [`RepairError::DataLoss`] if a unit task loses every replica holder.
pub fn plan_with_exclusions<'t, P: Planner + ?Sized>(
    planner: &P,
    task: &'t ReshardingTask,
    exclusions: &SenderExclusions,
) -> Result<Plan<'t>, RepairError> {
    let filtered = task.excluding(exclusions)?;
    let plan = planner.plan(&filtered);
    let assignments = plan.assignments().to_vec();
    let params = *plan.params();
    Ok(Plan::new(task, assignments, params))
}

/// The first replica device of `unit` on `host`.
///
/// # Panics
///
/// Panics if `host` holds no replica (planners only pick candidate hosts
/// from `unit.sender_hosts()`).
pub(crate) fn replica_on(unit: &UnitTask, host: HostId) -> DeviceId {
    unit.senders
        .iter()
        .find(|&&(_, h)| h == host)
        .map(|&(d, _)| d)
        .expect("host holds no replica of the slice")
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crossmesh_mesh::DeviceMesh;
    use crossmesh_netsim::{ClusterSpec, LinkParams};

    /// A 4-host cluster (2 sender + 2 receiver hosts), 4 devices each, with
    /// byte-scale bandwidths for readable numbers.
    pub fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(5, 4, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0))
    }

    pub fn task(src_spec: &str, dst_spec: &str, shape: &[u64]) -> ReshardingTask {
        let c = cluster();
        let a = DeviceMesh::from_cluster(&c, 0, (2, 4), "A").unwrap();
        let b = DeviceMesh::from_cluster(&c, 2, (2, 4), "B").unwrap();
        ReshardingTask::new(
            a,
            src_spec.parse().unwrap(),
            b,
            dst_spec.parse().unwrap(),
            shape,
            1,
        )
        .unwrap()
    }

    pub fn config() -> PlannerConfig {
        PlannerConfig::new(CostParams {
            inter_bw: 1.0,
            intra_bw: 100.0,
            inter_latency: 0.0,
            intra_latency: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn strategy_choice_resolution() {
        let t = task("S0RR", "S0RR", &[8, 8, 8]);
        let u = &t.units()[0];
        assert_eq!(
            StrategyChoice::Fixed(Strategy::SendRecv).resolve(u),
            Strategy::SendRecv
        );
        // Even split over receivers -> Alpa uses the all-gather path.
        assert_eq!(
            StrategyChoice::AlpaAuto.resolve(u),
            Strategy::GlobalAllGather
        );
    }

    #[test]
    fn replica_lookup() {
        let t = task("RRR", "S0RR", &[8, 8, 8]);
        let u = &t.units()[0];
        for h in u.sender_hosts() {
            let d = replica_on(u, h);
            assert!(u.senders.iter().any(|&(dd, hh)| dd == d && hh == h));
        }
    }

    #[test]
    fn plan_with_exclusions_avoids_the_excluded_host() {
        let t = task("RS1R", "S0RR", &[8, 8, 8]);
        let planner = EnsemblePlanner::new(config());
        let dead = HostId(0);
        let excl = SenderExclusions::none().with_host(dead);
        let plan = plan_with_exclusions(&planner, &t, &excl).unwrap();
        assert_eq!(plan.assignments().len(), t.units().len());
        assert!(plan.assignments().iter().all(|a| a.sender_host != dead));
        // The plan is bound to the ORIGINAL task.
        assert!(std::ptr::eq(plan.task(), &t));
    }

    #[test]
    fn plan_with_exclusions_reports_data_loss() {
        let t = task("S0RR", "S0RR", &[8, 8, 8]);
        let planner = NaivePlanner::new(config());
        let excl = SenderExclusions::none().with_host(HostId(0));
        let err = plan_with_exclusions(&planner, &t, &excl).unwrap_err();
        assert!(matches!(err, RepairError::DataLoss { .. }));
    }

    #[test]
    fn default_config_is_p3_like() {
        let c = PlannerConfig::default();
        assert_eq!(c.params.inter_bw, 1.25e9);
        assert!(matches!(
            c.strategy,
            StrategyChoice::Fixed(Strategy::Broadcast { .. })
        ));
    }
}
