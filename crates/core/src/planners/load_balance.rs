//! Load-balance-only planning: the classical LPT greedy (paper Eq. 4).

use super::{replica_on, Planner, PlannerConfig};
use crate::plan::{Assignment, Plan};
use crate::task::ReshardingTask;
use crossmesh_collectives::estimate_unit_task;
use crossmesh_netsim::HostId;
use std::collections::BTreeMap;

/// Balances sender loads with the longest-processing-time-first greedy:
/// sort unit tasks by descending duration, then assign each to the
/// candidate sender host with the currently lightest load. The plan order
/// is the assignment order (longest first), which doubles as a reasonable
/// list schedule.
///
/// This solves the simplified minimax problem (Eq. 4) but ignores receiver
/// conflicts — the gap the DFS and randomized-greedy planners close.
#[derive(Debug, Clone, Default)]
pub struct LoadBalancePlanner {
    config: PlannerConfig,
}

impl LoadBalancePlanner {
    /// Creates the planner with the given configuration.
    pub fn new(config: PlannerConfig) -> Self {
        LoadBalancePlanner { config }
    }
}

impl Planner for LoadBalancePlanner {
    fn plan<'t>(&self, task: &'t ReshardingTask) -> Plan<'t> {
        // (unit index, per-candidate-host durations)
        let mut items: Vec<(usize, Vec<(HostId, f64)>)> = task
            .units()
            .iter()
            .enumerate()
            .map(|(i, unit)| {
                let strategy = self.config.strategy.resolve(unit);
                let candidates: Vec<(HostId, f64)> = unit
                    .sender_hosts()
                    .into_iter()
                    .map(|h| {
                        (
                            h,
                            estimate_unit_task(&self.config.params, unit, h, strategy),
                        )
                    })
                    .collect();
                (i, candidates)
            })
            .collect();
        // Longest first (by the best-case duration); ties by index for
        // determinism.
        items.sort_by(|a, b| {
            let da = a.1.iter().map(|&(_, d)| d).fold(f64::INFINITY, f64::min);
            let db = b.1.iter().map(|&(_, d)| d).fold(f64::INFINITY, f64::min);
            db.total_cmp(&da).then(a.0.cmp(&b.0))
        });

        let mut load: BTreeMap<HostId, f64> = BTreeMap::new();
        let mut assignments = Vec::with_capacity(items.len());
        for (i, candidates) in items {
            let (host, duration) = candidates
                .iter()
                .copied()
                .min_by(|&(ha, da), &(hb, db)| {
                    let la = load.get(&ha).copied().unwrap_or(0.0) + da;
                    let lb = load.get(&hb).copied().unwrap_or(0.0) + db;
                    la.total_cmp(&lb).then(ha.cmp(&hb))
                })
                .expect("every unit task has at least one replica");
            *load.entry(host).or_insert(0.0) += duration;
            let unit = &task.units()[i];
            assignments.push(Assignment {
                unit: i,
                sender: replica_on(unit, host),
                sender_host: host,
                strategy: self.config.strategy.resolve(unit),
            });
        }
        Plan::new(task, assignments, self.config.params)
    }

    fn name(&self) -> &'static str {
        "load_balance"
    }

    fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name().hash(&mut h);
        super::hash_planner_config(&mut h, &self.config);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::NaivePlanner;
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn spreads_senders_over_replica_hosts() {
        // RS^1R source: 4 unique slices, each replicated over both sender
        // hosts; plenty of unit tasks to spread.
        let t = task("RS1R", "S0RR", &[8, 8, 8]);
        let plan = LoadBalancePlanner::new(config()).plan(&t);
        let hosts: BTreeSet<_> = plan.assignments().iter().map(|a| a.sender_host).collect();
        assert!(
            hosts.len() > 1,
            "LPT should use both sender hosts, used {hosts:?}"
        );
    }

    #[test]
    fn beats_naive_when_naive_congests() {
        // Naive pushes everything through host 0; LPT uses both hosts.
        let c = cluster();
        let t = task("RS1R", "S0RR", &[16, 8, 8]);
        let naive = NaivePlanner::new(config()).plan(&t).execute(&c).unwrap();
        let lpt = LoadBalancePlanner::new(config())
            .plan(&t)
            .execute(&c)
            .unwrap();
        assert!(
            lpt.simulated_seconds < naive.simulated_seconds * 0.95,
            "LPT {} vs naive {}",
            lpt.simulated_seconds,
            naive.simulated_seconds
        );
    }

    #[test]
    fn schedule_is_longest_first() {
        let t = task("S0RR", "S01RR", &[8, 8, 8]);
        let plan = LoadBalancePlanner::new(config()).plan(&t);
        let params = config().params;
        let durations: Vec<f64> = plan
            .assignments()
            .iter()
            .map(|a| estimate_unit_task(&params, &t.units()[a.unit], a.sender_host, a.strategy))
            .collect();
        assert!(durations.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }
}
