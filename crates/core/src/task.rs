//! The full cross-mesh resharding problem instance.

use crate::exclusions::{RepairError, SenderExclusions};
use crossmesh_mesh::{unit_tasks, DeviceMesh, MeshError, ShardingSpec, UnitTask};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One cross-mesh resharding task: send a tensor sharded as `src_spec` on
/// `src_mesh` so it appears as `dst_spec` on `dst_mesh`.
///
/// Construction eagerly decomposes the task into unit communication tasks;
/// planners and schedules operate on that decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReshardingTask {
    src_mesh: DeviceMesh,
    src_spec: ShardingSpec,
    dst_mesh: DeviceMesh,
    dst_spec: ShardingSpec,
    shape: Vec<u64>,
    elem_bytes: u64,
    units: Vec<UnitTask>,
}

impl ReshardingTask {
    /// Builds the task and its unit-task decomposition.
    ///
    /// # Errors
    ///
    /// Propagates [`MeshError`]s: overlapping meshes, rank mismatches, or
    /// empty tensors.
    pub fn new(
        src_mesh: DeviceMesh,
        src_spec: ShardingSpec,
        dst_mesh: DeviceMesh,
        dst_spec: ShardingSpec,
        shape: &[u64],
        elem_bytes: u64,
    ) -> Result<Self, MeshError> {
        let units = unit_tasks(
            &src_mesh, &src_spec, &dst_mesh, &dst_spec, shape, elem_bytes,
        )?;
        Ok(ReshardingTask {
            src_mesh,
            src_spec,
            dst_mesh,
            dst_spec,
            shape: shape.to_vec(),
            elem_bytes,
            units,
        })
    }

    /// Builds a task from an explicit unit-task list instead of a
    /// mesh/spec decomposition.
    ///
    /// This is the entry point for traffic patterns that are not tensor
    /// reshardings — e.g. MoE all-to-all dispatch, where each unit is one
    /// (source device → expert device) flow over a virtual token-byte
    /// space. The meshes and specs are descriptive only (display and
    /// cache keys); planners, plans, the plan cache, and the static
    /// verifier all operate on the units exactly as they do for
    /// decomposed tasks.
    ///
    /// # Panics
    ///
    /// Panics if `units` is empty, a unit's index differs from its
    /// position, a unit has no sender or no receiver, or a unit's byte
    /// count disagrees with `slice.volume() * elem_bytes`.
    pub fn from_units(
        src_mesh: DeviceMesh,
        src_spec: ShardingSpec,
        dst_mesh: DeviceMesh,
        dst_spec: ShardingSpec,
        shape: &[u64],
        elem_bytes: u64,
        units: Vec<UnitTask>,
    ) -> Self {
        assert!(!units.is_empty(), "a task needs at least one unit task");
        for (i, unit) in units.iter().enumerate() {
            assert_eq!(unit.index, i, "unit index {} at position {i}", unit.index);
            assert!(!unit.senders.is_empty(), "unit {i} has no sender");
            assert!(!unit.receivers.is_empty(), "unit {i} has no receiver");
            assert_eq!(
                unit.bytes,
                unit.slice.volume() * elem_bytes,
                "unit {i} bytes disagree with its slice volume"
            );
        }
        ReshardingTask {
            src_mesh,
            src_spec,
            dst_mesh,
            dst_spec,
            shape: shape.to_vec(),
            elem_bytes,
            units,
        }
    }

    /// The unit communication tasks, in deterministic slice order.
    pub fn units(&self) -> &[UnitTask] {
        &self.units
    }

    /// Source mesh.
    pub fn src_mesh(&self) -> &DeviceMesh {
        &self.src_mesh
    }

    /// Destination mesh.
    pub fn dst_mesh(&self) -> &DeviceMesh {
        &self.dst_mesh
    }

    /// Source sharding spec.
    pub fn src_spec(&self) -> &ShardingSpec {
        &self.src_spec
    }

    /// Destination sharding spec.
    pub fn dst_spec(&self) -> &ShardingSpec {
        &self.dst_spec
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[u64] {
        &self.shape
    }

    /// Bytes per tensor element.
    pub fn elem_bytes(&self) -> u64 {
        self.elem_bytes
    }

    /// Total unique bytes that must cross between the meshes — the §2.2
    /// lower bound (the tensor size).
    pub fn total_bytes(&self) -> u64 {
        self.units.iter().map(|u| u.bytes).sum()
    }

    /// A content signature of the task for plan-cache keys: two tasks with
    /// the same signature describe the same planning problem.
    ///
    /// Hashes the sharding specs, meshes, tensor shape, element size, and
    /// every unit task's replica/receiver structure — everything a planner
    /// reads. Senders removed by [`excluding`](ReshardingTask::excluding)
    /// change the signature, so a filtered task never aliases its parent.
    pub fn cache_signature(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.src_mesh.to_string().hash(&mut h);
        self.src_spec.to_string().hash(&mut h);
        self.dst_mesh.to_string().hash(&mut h);
        self.dst_spec.to_string().hash(&mut h);
        self.shape.hash(&mut h);
        self.elem_bytes.hash(&mut h);
        self.units.len().hash(&mut h);
        for unit in &self.units {
            unit.index.hash(&mut h);
            unit.bytes.hash(&mut h);
            unit.senders.hash(&mut h);
            for r in &unit.receivers {
                (r.device, r.host).hash(&mut h);
            }
        }
        h.finish()
    }

    /// The same task with the excluded senders removed from every unit
    /// task's replica set `N_i` — the planning input after failures.
    ///
    /// # Errors
    ///
    /// [`RepairError::DataLoss`] if some unit task loses its last replica
    /// holder: the slice no longer exists anywhere on the source mesh.
    pub fn excluding(&self, exclusions: &SenderExclusions) -> Result<ReshardingTask, RepairError> {
        let mut filtered = self.clone();
        if exclusions.is_empty() {
            return Ok(filtered);
        }
        for unit in &mut filtered.units {
            unit.senders.retain(|&(d, h)| !exclusions.excludes(d, h));
            if unit.senders.is_empty() {
                return Err(RepairError::DataLoss { unit: unit.index });
            }
        }
        Ok(filtered)
    }
}

impl fmt::Display for ReshardingTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} -> {} @ {} ({} units)",
            self.src_spec,
            self.src_mesh,
            self.dst_spec,
            self.dst_mesh,
            self.units.len()
        )
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use crossmesh_netsim::{ClusterSpec, LinkParams};

    fn setup() -> (ClusterSpec, DeviceMesh, DeviceMesh) {
        let c = ClusterSpec::homogeneous(4, 4, LinkParams::new(100e9, 1.25e9));
        let a = DeviceMesh::from_cluster(&c, 0, (2, 4), "A").unwrap();
        let b = DeviceMesh::from_cluster(&c, 2, (2, 4), "B").unwrap();
        (c, a, b)
    }

    #[test]
    fn construction_decomposes() {
        let (_, a, b) = setup();
        let t = ReshardingTask::new(
            a,
            "S0RR".parse().unwrap(),
            b,
            "S0RR".parse().unwrap(),
            &[64, 64, 64],
            4,
        )
        .unwrap();
        assert_eq!(t.units().len(), 2);
        assert_eq!(t.total_bytes(), 64 * 64 * 64 * 4);
        assert!(t.to_string().contains("2 units"));
    }

    #[test]
    fn excluding_filters_replica_sets() {
        let (_, a, b) = setup();
        // RS1R: each slice replicated across both sender-mesh rows
        // (hosts 0 and 1), so excluding one host leaves a replica.
        let t = ReshardingTask::new(
            a,
            "RS1R".parse().unwrap(),
            b,
            "S0RR".parse().unwrap(),
            &[8, 8, 8],
            1,
        )
        .unwrap();
        let e = SenderExclusions::none().with_host(crossmesh_netsim::HostId(0));
        let filtered = t.excluding(&e).unwrap();
        for unit in filtered.units() {
            assert!(!unit.senders.is_empty());
            assert!(unit
                .senders
                .iter()
                .all(|&(_, h)| h != crossmesh_netsim::HostId(0)));
        }
        // The unfiltered task is untouched.
        assert!(t.units().iter().any(|u| u
            .senders
            .iter()
            .any(|&(_, h)| h == crossmesh_netsim::HostId(0))));
    }

    #[test]
    fn excluding_every_replica_is_data_loss() {
        let (_, a, b) = setup();
        // S0RR: each slice lives on exactly one sender host.
        let t = ReshardingTask::new(
            a,
            "S0RR".parse().unwrap(),
            b,
            "S0RR".parse().unwrap(),
            &[8, 8, 8],
            1,
        )
        .unwrap();
        let e = SenderExclusions::none().with_host(crossmesh_netsim::HostId(0));
        let err = t.excluding(&e).unwrap_err();
        assert!(matches!(err, RepairError::DataLoss { .. }));
    }

    #[test]
    fn from_units_carries_synthetic_traffic() {
        use crossmesh_mesh::{Receiver, Tile};
        let (c, a, b) = setup();
        let units = vec![crossmesh_mesh::UnitTask {
            index: 0,
            slice: Tile::new(vec![0..64]),
            bytes: 64,
            senders: vec![(c.device(0, 0), crossmesh_netsim::HostId(0))],
            receivers: vec![Receiver {
                device: c.device(2, 0),
                host: crossmesh_netsim::HostId(2),
                needed: Tile::new(vec![0..64]),
            }],
        }];
        let t = ReshardingTask::from_units(
            a,
            "S0".parse().unwrap(),
            b,
            "S0".parse().unwrap(),
            &[64],
            1,
            units,
        );
        assert_eq!(t.units().len(), 1);
        assert_eq!(t.total_bytes(), 64);
        assert_ne!(t.cache_signature(), 0);
    }

    #[test]
    #[should_panic(expected = "bytes disagree")]
    fn from_units_rejects_inconsistent_bytes() {
        use crossmesh_mesh::{Receiver, Tile};
        let (c, a, b) = setup();
        let units = vec![crossmesh_mesh::UnitTask {
            index: 0,
            slice: Tile::new(vec![0..64]),
            bytes: 7,
            senders: vec![(c.device(0, 0), crossmesh_netsim::HostId(0))],
            receivers: vec![Receiver {
                device: c.device(2, 0),
                host: crossmesh_netsim::HostId(2),
                needed: Tile::new(vec![0..64]),
            }],
        }];
        let _ = ReshardingTask::from_units(
            a,
            "S0".parse().unwrap(),
            b,
            "S0".parse().unwrap(),
            &[64],
            1,
            units,
        );
    }

    #[test]
    fn overlap_rejected() {
        let (c, a, _) = setup();
        let overlapping = DeviceMesh::from_cluster(&c, 1, (2, 4), "B").unwrap();
        let err = ReshardingTask::new(
            a,
            "RRR".parse().unwrap(),
            overlapping,
            "RRR".parse().unwrap(),
            &[8, 8, 8],
            4,
        )
        .unwrap_err();
        assert_eq!(err, MeshError::OverlappingMeshes);
    }
}
