//! Logical data plane: executes a plan on real buffers and verifies that
//! the destination mesh ends up with exactly the right data.
//!
//! The simulator (`crossmesh-netsim`) checks *timing*; this module checks
//! *placement*. Every tensor element is materialized as its linear index
//! (truncated to the element width), source devices hold their layout tiles
//! as byte buffers, the plan's unit tasks move sub-tiles, and the
//! destination tiles are reassembled and compared element-by-element
//! against ground truth.

use crate::plan::Plan;
use bytes::Bytes;
use crossmesh_check::TileDiff;
use crossmesh_mesh::{Layout, Tile};
use crossmesh_netsim::DeviceId;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors surfaced by data-plane execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataPlaneError {
    /// A chosen sender does not actually hold the slice it must send.
    SenderMissesSlice {
        /// The offending device.
        device: DeviceId,
        /// The slice it was asked to send.
        slice: String,
    },
    /// After executing the plan, a destination element was never written.
    Uncovered {
        /// First missing element: which device, which tile, where inside it.
        diff: TileDiff,
    },
    /// A destination element holds the wrong value.
    Corrupted {
        /// First divergent element with its expected and actual values.
        diff: TileDiff,
    },
    /// Two writes to the same destination element disagreed.
    Conflict {
        /// The receiving device.
        device: DeviceId,
        /// Linear index of the conflicting element.
        linear_index: u64,
    },
}

impl fmt::Display for DataPlaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataPlaneError::SenderMissesSlice { device, slice } => {
                write!(f, "sender {device} does not hold slice {slice}")
            }
            DataPlaneError::Uncovered { diff } => {
                write!(f, "destination never fully written: {diff}")
            }
            DataPlaneError::Corrupted { diff } => {
                write!(f, "destination holds wrong data: {diff}")
            }
            DataPlaneError::Conflict {
                device,
                linear_index,
            } => write!(
                f,
                "conflicting writes to element {linear_index} on device {device}"
            ),
        }
    }
}

impl Error for DataPlaneError {}

/// A device-resident tile: the region it covers and its contents as a
/// row-major (within the tile) byte buffer of `elem_bytes`-wide elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileBuffer {
    /// The region of the full tensor this buffer covers.
    pub tile: Tile,
    /// Element width in bytes (1–8).
    pub elem_bytes: usize,
    /// `tile.volume() * elem_bytes` bytes, row-major within the tile.
    pub data: Bytes,
}

/// Iterates all multi-dimensional indices of `tile` in row-major order.
fn tile_indices(tile: &Tile) -> impl Iterator<Item = Vec<u64>> + '_ {
    let rank = tile.rank();
    let mut current: Option<Vec<u64>> = if tile.is_empty() {
        None
    } else {
        Some((0..rank).map(|d| tile.range(d).start).collect())
    };
    std::iter::from_fn(move || {
        let idx = current.clone()?;
        // Advance the odometer: increment the last dimension, carrying.
        let mut next = idx.clone();
        let mut d = rank;
        loop {
            if d == 0 {
                current = None;
                break;
            }
            d -= 1;
            next[d] += 1;
            if next[d] < tile.range(d).end {
                current = Some(next);
                break;
            }
            next[d] = tile.range(d).start;
        }
        Some(idx)
    })
}

/// The linear index of `idx` in a tensor of `shape`.
fn linear_index(shape: &[u64], idx: &[u64]) -> u64 {
    let mut lin = 0u64;
    for (i, &n) in shape.iter().enumerate() {
        lin = lin * n + idx[i];
    }
    lin
}

/// Encodes `value` as `elem_bytes` little-endian bytes (truncating).
fn encode(value: u64, elem_bytes: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&value.to_le_bytes()[..elem_bytes]);
}

/// Truncates `value` to the range representable in `elem_bytes` bytes,
/// mirroring what [`encode`] stores.
fn truncate(value: u64, elem_bytes: usize) -> u64 {
    if elem_bytes >= 8 {
        value
    } else {
        value & ((1u64 << (elem_bytes * 8)) - 1)
    }
}

impl TileBuffer {
    /// Materializes ground truth for `tile` of a tensor with `shape`:
    /// every element holds its linear index.
    ///
    /// # Panics
    ///
    /// Panics if `elem_bytes` is 0 or exceeds 8.
    pub fn materialize(tile: &Tile, shape: &[u64], elem_bytes: usize) -> Self {
        assert!(
            (1..=8).contains(&elem_bytes),
            "element width must be 1-8 bytes"
        );
        let mut data = Vec::with_capacity(tile.volume() as usize * elem_bytes);
        for idx in tile_indices(tile) {
            encode(linear_index(shape, &idx), elem_bytes, &mut data);
        }
        TileBuffer {
            tile: tile.clone(),
            elem_bytes,
            data: Bytes::from(data),
        }
    }

    /// Extracts the sub-region `sub` (which must be contained in this
    /// buffer's tile) as a new buffer.
    ///
    /// # Panics
    ///
    /// Panics if `sub` is not contained in `self.tile`.
    pub fn extract(&self, sub: &Tile) -> TileBuffer {
        assert!(
            self.tile.contains(sub),
            "sub-tile {sub} not contained in {}",
            self.tile
        );
        let rank = self.tile.rank();
        // Strides of the parent buffer, in elements.
        let mut strides = vec![1u64; rank];
        for d in (0..rank.saturating_sub(1)).rev() {
            let extent = self.tile.range(d + 1).end - self.tile.range(d + 1).start;
            strides[d] = strides[d + 1] * extent;
        }
        let mut data = Vec::with_capacity(sub.volume() as usize * self.elem_bytes);
        for idx in tile_indices(sub) {
            let mut off = 0u64;
            for d in 0..rank {
                off += (idx[d] - self.tile.range(d).start) * strides[d];
            }
            let byte = off as usize * self.elem_bytes;
            data.extend_from_slice(&self.data[byte..byte + self.elem_bytes]);
        }
        TileBuffer {
            tile: sub.clone(),
            elem_bytes: self.elem_bytes,
            data: Bytes::from(data),
        }
    }

    /// Decodes the element at the row-major position `i` within the tile.
    pub fn element(&self, i: usize) -> u64 {
        let mut raw = [0u8; 8];
        raw[..self.elem_bytes]
            .copy_from_slice(&self.data[i * self.elem_bytes..(i + 1) * self.elem_bytes]);
        u64::from_le_bytes(raw)
    }
}

/// Per-destination-device assembly buffer with coverage tracking.
///
/// Public so execution backends outside this crate (e.g. the threaded
/// runtime) can assemble destination tiles from delivered pieces and then
/// share [`verify_destination`] with the in-process data plane.
#[derive(Debug)]
pub struct DestinationBuffer {
    tile: Tile,
    elem_bytes: usize,
    data: Vec<u8>,
    written: Vec<bool>,
}

impl DestinationBuffer {
    /// An all-zero, nothing-written-yet buffer covering `tile`.
    pub fn new(tile: Tile, elem_bytes: usize) -> Self {
        let n = tile.volume() as usize;
        DestinationBuffer {
            tile,
            elem_bytes,
            data: vec![0; n * elem_bytes],
            written: vec![false; n],
        }
    }

    /// The region this buffer covers.
    pub fn tile(&self) -> &Tile {
        &self.tile
    }

    /// Writes a delivered piece into the buffer. `device` is only used to
    /// attribute errors.
    ///
    /// # Errors
    ///
    /// Returns [`DataPlaneError::Conflict`] if an element written twice
    /// disagrees with its earlier value.
    ///
    /// # Panics
    ///
    /// Panics if `piece.tile` is not contained in this buffer's tile.
    pub fn write(&mut self, piece: &TileBuffer, device: DeviceId) -> Result<(), DataPlaneError> {
        assert!(
            piece.tile.is_empty() || self.tile.contains(&piece.tile),
            "piece {} not contained in destination tile {}",
            piece.tile,
            self.tile
        );
        let rank = self.tile.rank();
        let mut strides = vec![1u64; rank];
        for d in (0..rank.saturating_sub(1)).rev() {
            let extent = self.tile.range(d + 1).end - self.tile.range(d + 1).start;
            strides[d] = strides[d + 1] * extent;
        }
        for (i, idx) in tile_indices(&piece.tile).enumerate() {
            let mut off = 0u64;
            for d in 0..rank {
                off += (idx[d] - self.tile.range(d).start) * strides[d];
            }
            let elem = off as usize;
            let byte = elem * self.elem_bytes;
            let src = &piece.data[i * self.elem_bytes..(i + 1) * self.elem_bytes];
            if self.written[elem] {
                if &self.data[byte..byte + self.elem_bytes] != src {
                    return Err(DataPlaneError::Conflict {
                        device,
                        linear_index: off,
                    });
                }
            } else {
                self.data[byte..byte + self.elem_bytes].copy_from_slice(src);
                self.written[elem] = true;
            }
        }
        Ok(())
    }
}

/// The verified outcome of a data-plane execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPlaneReport {
    /// Bytes handed to receivers, summed over unit tasks (the logical
    /// payload, before any strategy-level duplication).
    pub delivered_bytes: u64,
    /// Final per-device tile buffers on the destination mesh.
    pub destination: BTreeMap<u32, TileBuffer>,
}

/// Checks that every assembled destination buffer is fully covered and
/// holds exactly its tile of the ground-truth tensor (every element equal
/// to its linear index, truncated to the element width). Returns the final
/// immutable buffers keyed by device id; empty tiles are skipped.
///
/// This is the shared back half of [`execute_and_verify`]; real execution
/// backends (the threaded runtime) assemble [`DestinationBuffer`]s their
/// own way and then call this to assert byte-exact placement.
///
/// # Errors
///
/// Returns [`DataPlaneError::Uncovered`] for an element never written and
/// [`DataPlaneError::Corrupted`] for an element holding a wrong value.
pub fn verify_destination(
    shape: &[u64],
    buffers: impl IntoIterator<Item = (DeviceId, DestinationBuffer)>,
) -> Result<BTreeMap<u32, TileBuffer>, DataPlaneError> {
    let mut destination = BTreeMap::new();
    for (device, buf) in buffers {
        let tile = buf.tile.clone();
        let elem_bytes = buf.elem_bytes;
        if tile.is_empty() {
            continue;
        }
        for (i, idx) in tile_indices(&tile).enumerate() {
            let lin = linear_index(shape, &idx);
            if !buf.written[i] {
                return Err(DataPlaneError::Uncovered {
                    diff: TileDiff {
                        device,
                        tile: tile.clone(),
                        offset: i as u64,
                        linear_index: lin,
                        expected: Some(truncate(lin, elem_bytes)),
                        actual: None,
                    },
                });
            }
        }
        let got = TileBuffer {
            tile: tile.clone(),
            elem_bytes,
            data: Bytes::from(buf.data),
        };
        let want = TileBuffer::materialize(&tile, shape, elem_bytes);
        if got.data != want.data {
            // Locate the first differing element for the structured diff.
            let bad = (0..tile.volume() as usize)
                .find(|&i| got.element(i) != want.element(i))
                .unwrap_or(0);
            let idx = tile_indices(&tile).nth(bad).expect("index exists");
            return Err(DataPlaneError::Corrupted {
                diff: TileDiff {
                    device,
                    tile: tile.clone(),
                    offset: bad as u64,
                    linear_index: linear_index(shape, &idx),
                    expected: Some(want.element(bad)),
                    actual: Some(got.element(bad)),
                },
            });
        }
        destination.insert(device.0, got);
    }
    Ok(destination)
}

/// Executes `plan` on materialized buffers and verifies every destination
/// device ends up holding exactly its layout tile of the tensor.
///
/// # Errors
///
/// Returns the first placement defect found: a sender asked to ship data it
/// does not hold, an element never delivered, a corrupted value, or
/// conflicting deliveries.
pub fn execute_and_verify(plan: &Plan<'_>) -> Result<DataPlaneReport, DataPlaneError> {
    let task = plan.task();
    let shape = task.shape();
    let elem_bytes = task.elem_bytes() as usize;
    let src_layout =
        Layout::new(task.src_mesh(), task.src_spec(), shape).expect("task validated at build");
    let dst_layout =
        Layout::new(task.dst_mesh(), task.dst_spec(), shape).expect("task validated at build");

    // Materialize the source mesh.
    let mut src_buffers: BTreeMap<DeviceId, TileBuffer> = BTreeMap::new();
    for coord in task.src_mesh().coords() {
        let tile = src_layout.tile_at(coord);
        src_buffers.insert(
            task.src_mesh().device(coord),
            TileBuffer::materialize(tile, shape, elem_bytes),
        );
    }

    // Destination assemblers.
    let mut assemblers: BTreeMap<DeviceId, DestinationBuffer> = BTreeMap::new();
    for coord in task.dst_mesh().coords() {
        let device = task.dst_mesh().device(coord);
        let tile = dst_layout.tile_at(coord).clone();
        assemblers.insert(device, DestinationBuffer::new(tile, elem_bytes));
    }

    // Execute unit tasks in plan order.
    let mut delivered = 0u64;
    for a in plan.assignments() {
        let unit = &task.units()[a.unit];
        let holder = src_buffers
            .get(&a.sender)
            .expect("plan validated sender membership");
        if !holder.tile.contains(&unit.slice) {
            return Err(DataPlaneError::SenderMissesSlice {
                device: a.sender,
                slice: unit.slice.to_string(),
            });
        }
        let slice_buf = holder.extract(&unit.slice);
        for r in &unit.receivers {
            let piece = slice_buf.extract(&r.needed);
            delivered += piece.tile.volume() * elem_bytes as u64;
            let asm = assemblers
                .get_mut(&r.device)
                .expect("receivers live on the destination mesh");
            asm.write(&piece, r.device)?;
        }
    }

    // Verify coverage and contents against ground truth.
    let destination = verify_destination(shape, assemblers)?;

    Ok(DataPlaneReport {
        delivered_bytes: delivered,
        destination,
    })
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use crate::planners::{EnsemblePlanner, NaivePlanner, Planner, PlannerConfig};
    use crate::task::ReshardingTask;
    use crossmesh_collectives::CostParams;
    use crossmesh_mesh::DeviceMesh;
    use crossmesh_netsim::{ClusterSpec, LinkParams};

    fn config() -> PlannerConfig {
        PlannerConfig::new(CostParams {
            inter_bw: 1.0,
            intra_bw: 100.0,
            inter_latency: 0.0,
            intra_latency: 0.0,
        })
    }

    fn task(src: &str, dst: &str, shape: &[u64], elem: u64) -> ReshardingTask {
        let c = ClusterSpec::homogeneous(4, 4, LinkParams::new(100.0, 1.0));
        let a = DeviceMesh::from_cluster(&c, 0, (2, 4), "A").unwrap();
        let b = DeviceMesh::from_cluster(&c, 2, (2, 4), "B").unwrap();
        ReshardingTask::new(
            a,
            src.parse().unwrap(),
            b,
            dst.parse().unwrap(),
            shape,
            elem,
        )
        .unwrap()
    }

    #[test]
    fn tile_indices_are_row_major() {
        let t = Tile::new([1..3, 0..2]);
        let idx: Vec<Vec<u64>> = tile_indices(&t).collect();
        assert_eq!(idx, vec![vec![1, 0], vec![1, 1], vec![2, 0], vec![2, 1]]);
    }

    #[test]
    fn materialize_and_extract_round_trip() {
        let full = Tile::new([0..4, 0..4]);
        let buf = TileBuffer::materialize(&full, &[4, 4], 2);
        assert_eq!(buf.element(0), 0);
        assert_eq!(buf.element(5), 5);
        let sub = buf.extract(&Tile::new([1..3, 2..4]));
        // Element (1,2) of a 4x4 tensor has linear index 6.
        assert_eq!(sub.element(0), 6);
        assert_eq!(sub.element(3), 11);
    }

    #[test]
    fn extraction_from_offset_tiles() {
        let tile = Tile::new([2..6, 4..8]);
        let buf = TileBuffer::materialize(&tile, &[8, 8], 4);
        let sub = buf.extract(&Tile::new([3..4, 5..7]));
        assert_eq!(sub.element(0), 3 * 8 + 5);
        assert_eq!(sub.element(1), 3 * 8 + 6);
    }

    #[test]
    fn plans_move_the_right_data() {
        for (src, dst) in [
            ("RR", "RR"),
            ("S0R", "RS1"),
            ("S01R", "S0S1"),
            ("RS0", "S1R"),
            ("S0S1", "S1S0"),
        ] {
            let t = task(src, dst, &[8, 6], 4);
            let plan = EnsemblePlanner::new(config()).plan(&t);
            let report = execute_and_verify(&plan).unwrap_or_else(|e| panic!("{src}->{dst}: {e}"));
            assert!(report.delivered_bytes >= t.total_bytes());
        }
    }

    #[test]
    fn uneven_shapes_still_verify() {
        // 7x5 over 8-way sharding: ragged and empty tiles everywhere.
        let t = task("S01R", "S0S1", &[7, 5], 2);
        let plan = NaivePlanner::new(config()).plan(&t);
        execute_and_verify(&plan).unwrap();
    }

    #[test]
    fn narrow_elements_truncate_consistently() {
        // 1-byte elements: values wrap at 256 but ground truth wraps the
        // same way, so verification still passes.
        let t = task("S0R", "S1R", &[32, 32], 1);
        let plan = EnsemblePlanner::new(config()).plan(&t);
        execute_and_verify(&plan).unwrap();
    }

    #[test]
    fn verify_destination_flags_uncovered_and_corrupted() {
        let tile = Tile::new([0..2, 0..2]);
        // Nothing written: the first element is uncovered.
        let empty = DestinationBuffer::new(tile.clone(), 1);
        let err = verify_destination(&[2, 2], [(DeviceId(0), empty)]).unwrap_err();
        match err {
            DataPlaneError::Uncovered { diff } => {
                assert_eq!(diff.device, DeviceId(0));
                assert_eq!(diff.tile, tile);
                assert_eq!(diff.offset, 0);
                assert_eq!(diff.linear_index, 0);
                assert_eq!(diff.expected, Some(0));
                assert_eq!(diff.actual, None);
            }
            other => panic!("expected Uncovered, got {other}"),
        }
        // Fully covered with ground truth: passes and returns the buffer.
        let truth = TileBuffer::materialize(&tile, &[2, 2], 1);
        let mut ok = DestinationBuffer::new(tile.clone(), 1);
        ok.write(&truth, DeviceId(1)).unwrap();
        let out = verify_destination(&[2, 2], [(DeviceId(1), ok)]).unwrap();
        assert_eq!(out[&1].data, truth.data);
        // Covered but with wrong contents: corrupted.
        let mut bad = DestinationBuffer::new(tile.clone(), 1);
        bad.write(
            &TileBuffer {
                tile: tile.clone(),
                elem_bytes: 1,
                data: Bytes::from(vec![9u8; 4]),
            },
            DeviceId(2),
        )
        .unwrap();
        let err = verify_destination(&[2, 2], [(DeviceId(2), bad)]).unwrap_err();
        match err {
            DataPlaneError::Corrupted { diff } => {
                assert_eq!(diff.device, DeviceId(2));
                assert_eq!(diff.offset, 0);
                assert_eq!(diff.linear_index, 0);
                assert_eq!(diff.expected, Some(0));
                assert_eq!(diff.actual, Some(9));
            }
            other => panic!("expected Corrupted, got {other}"),
        }
    }

    #[test]
    #[should_panic(expected = "not contained")]
    fn extract_outside_tile_panics() {
        let buf = TileBuffer::materialize(&Tile::new([0..2]), &[4], 1);
        let _ = buf.extract(&Tile::new([1..3]));
    }
}
