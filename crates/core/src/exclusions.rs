//! Sender exclusions: which replica holders a planner must avoid.
//!
//! Fault recovery feeds the set of crashed hosts (or individually failed
//! devices) in here; planners then solve the same §3.2 problem with those
//! senders removed from every unit task's replica set `N_i`. If some
//! `N_i` empties, the slice's data no longer exists anywhere on the
//! source mesh and repair reports [`RepairError::DataLoss`] instead of
//! silently producing a plan that cannot deliver the tensor.

use crossmesh_netsim::{DeviceId, HostId};
use std::collections::BTreeSet;
use std::fmt;

/// A set of senders that planning must avoid: whole hosts (crashes) and
/// individual devices (e.g. a wedged NIC queue).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SenderExclusions {
    hosts: BTreeSet<HostId>,
    devices: BTreeSet<DeviceId>,
}

impl SenderExclusions {
    /// No exclusions: planning sees every replica.
    pub fn none() -> Self {
        SenderExclusions::default()
    }

    /// Excludes every device on the given hosts.
    pub fn for_hosts<I: IntoIterator<Item = HostId>>(hosts: I) -> Self {
        SenderExclusions {
            hosts: hosts.into_iter().collect(),
            devices: BTreeSet::new(),
        }
    }

    /// Returns a copy that also excludes every device on `host`.
    #[must_use]
    pub fn with_host(mut self, host: HostId) -> Self {
        self.hosts.insert(host);
        self
    }

    /// Returns a copy that also excludes the single device `device`.
    #[must_use]
    pub fn with_device(mut self, device: DeviceId) -> Self {
        self.devices.insert(device);
        self
    }

    /// True if the replica `(device, host)` may not be used as a sender.
    pub fn excludes(&self, device: DeviceId, host: HostId) -> bool {
        self.hosts.contains(&host) || self.devices.contains(&device)
    }

    /// True if nothing is excluded.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty() && self.devices.is_empty()
    }

    /// The excluded hosts, ascending.
    pub fn excluded_hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.hosts.iter().copied()
    }
}

impl fmt::Display for SenderExclusions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "none");
        }
        let mut parts: Vec<String> = self.hosts.iter().map(|h| h.to_string()).collect();
        parts.extend(self.devices.iter().map(|d| d.to_string()));
        write!(f, "{}", parts.join(","))
    }
}

/// Why a plan could not be repaired around the excluded senders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairError {
    /// Every replica holder of one unit task was excluded: the slice
    /// exists nowhere on the surviving source mesh. The tensor cannot be
    /// delivered; the caller must treat this as data loss, not retry.
    DataLoss {
        /// Index of the orphaned unit task (into
        /// [`ReshardingTask::units`](crate::ReshardingTask::units)).
        unit: usize,
    },
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::DataLoss { unit } => write!(
                f,
                "data loss: every replica holder of unit task {unit} is excluded"
            ),
        }
    }
}

impl std::error::Error for RepairError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_exclusion_covers_its_devices() {
        let e = SenderExclusions::none().with_host(HostId(1));
        assert!(e.excludes(DeviceId(7), HostId(1)));
        assert!(!e.excludes(DeviceId(7), HostId(0)));
        assert!(!e.is_empty());
        assert_eq!(e.excluded_hosts().collect::<Vec<_>>(), vec![HostId(1)]);
    }

    #[test]
    fn device_exclusion_is_host_independent() {
        let e = SenderExclusions::none().with_device(DeviceId(3));
        assert!(e.excludes(DeviceId(3), HostId(0)));
        assert!(!e.excludes(DeviceId(4), HostId(0)));
    }

    #[test]
    fn empty_excludes_nothing() {
        let e = SenderExclusions::none();
        assert!(e.is_empty());
        assert!(!e.excludes(DeviceId(0), HostId(0)));
        assert_eq!(e.to_string(), "none");
    }

    #[test]
    fn data_loss_names_the_unit() {
        let err = RepairError::DataLoss { unit: 4 };
        assert!(err.to_string().contains("unit task 4"));
    }
}
