//! Cross-mesh resharding planning: the paper's primary contribution.
//!
//! A [`ReshardingTask`] describes one tensor that must move from a source
//! mesh (with one sharding spec) to a destination mesh (with another). It
//! decomposes into unit communication tasks (`crossmesh-mesh`), each lowered
//! with a communication [`Strategy`](crossmesh_collectives::Strategy)
//! (`crossmesh-collectives`). What remains — and what this crate solves — is
//! the paper's §3.2 **load balancing and scheduling problem**:
//!
//! * pick, for every unit task, the sender host `n_i* ∈ n_i` among the
//!   replica holders, and
//! * order the tasks so that tasks sharing a sender or receiver host never
//!   overlap (Eq. 1–3), minimising the completion time of the last task.
//!
//! Four algorithms are provided, mirroring §3.2 and the Figure 8 ablation:
//!
//! * [`NaivePlanner`] — lowest-index sender, arbitrary (index) order;
//! * [`LoadBalancePlanner`] — the classical LPT greedy on sender loads
//!   (Eq. 4), order by descending duration;
//! * [`DfsPlanner`] — depth-first search over sender assignments with
//!   lower-bound pruning and a node budget;
//! * [`RandomizedGreedyPlanner`] — rounds of maximum non-conflicting task
//!   sets found by seeded random permutations;
//! * [`EnsemblePlanner`] — runs DFS and randomized greedy, returns the plan
//!   with the better estimated makespan (the paper's final configuration).
//!
//! The produced [`Plan`] can be [`estimate`](Plan::estimate)d analytically
//! or [`execute`](Plan::execute)d on the flow-level simulator.
//!
//! Planning is parallel: the ensemble members run concurrently, greedy
//! restarts and DFS branches fan out over the current rayon pool, and every
//! planner is byte-identical to its sequential self at any thread count. A
//! [`PlanCache`] amortizes planning across repeated identical tasks (every
//! pipeline microbatch, every repair round), keyed by task content,
//! [`SenderExclusions`], and planner fingerprint.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataplane;

mod cache;
mod exclusions;
mod plan;
mod planners;
mod task;

pub use cache::{CacheStats, PlanCache};
pub use exclusions::{RepairError, SenderExclusions};
pub use plan::{Assignment, ExecutionReport, Plan};
pub use planners::{
    plan_with_exclusions, DfsPlanner, EnsemblePlanner, LoadBalancePlanner, NaivePlanner, Planner,
    PlannerConfig, RandomizedGreedyPlanner, StrategyChoice,
};
pub use task::ReshardingTask;

// Re-exports so downstream users rarely need the substrate crates directly.
pub use crossmesh_collectives::{CostParams, Strategy};
pub use crossmesh_mesh::{DeviceMesh, MeshError, ShardingSpec, UnitTask};
