//! Property-based tests of intra-mesh resharding (Figure 1b layout
//! conversion within one mesh).

use crossmesh_collectives::lower_intra_mesh_resharding;
use crossmesh_mesh::{DeviceMesh, DimSharding, Layout, ShardingSpec};
use crossmesh_netsim::{ClusterSpec, Engine, LinkParams, TaskGraph, Work};
use proptest::prelude::*;

fn spec_strategy(rank: usize) -> impl Strategy<Value = ShardingSpec> {
    (
        prop::option::of(0..rank),
        prop::option::of(0..rank),
        any::<bool>(),
    )
        .prop_map(move |(a0, a1, swap)| {
            let mut dims = vec![DimSharding::Replicated; rank];
            match (a0, a1) {
                (Some(d0), Some(d1)) if d0 == d1 => {
                    dims[d0] = DimSharding::Sharded(if swap { vec![0, 1] } else { vec![1, 0] });
                }
                (a0, a1) => {
                    if let Some(d) = a0 {
                        dims[d] = DimSharding::Sharded(vec![0]);
                    }
                    if let Some(d) = a1 {
                        dims[d] = DimSharding::Sharded(vec![1]);
                    }
                }
            }
            ShardingSpec::new(dims).expect("valid by construction")
        })
}

fn cluster() -> ClusterSpec {
    ClusterSpec::homogeneous(2, 4, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every conversion completes, and each device receives at least the
    /// volume of its new tile that its old tile did not already cover.
    #[test]
    fn conversions_deliver_missing_volume(
        src in spec_strategy(2),
        dst in spec_strategy(2),
        shape in prop::collection::vec(2u64..16, 2),
    ) {
        let c = cluster();
        let mesh = DeviceMesh::from_cluster(&c, 0, (2, 4), "m").unwrap();
        let mut g = TaskGraph::new();
        let r = lower_intra_mesh_resharding(&mut g, &mesh, &src, &dst, &shape, 1, &[]).unwrap();
        let trace = Engine::new(&c).run(&g).unwrap();
        prop_assert!(trace.interval(r.done).finish >= 0.0);

        // Per-device inbound bytes >= missing volume of the new tile.
        let src_layout = Layout::new(&mesh, &src, &shape).unwrap();
        let dst_layout = Layout::new(&mesh, &dst, &shape).unwrap();
        let mut inbound = std::collections::BTreeMap::new();
        for (_, t) in g.iter() {
            if let Work::Flow { dst, bytes, .. } = t.work {
                *inbound.entry(dst).or_insert(0.0) += bytes;
            }
        }
        for coord in mesh.coords() {
            let dev = mesh.device(coord);
            let have = src_layout.tile_at(coord);
            let want = dst_layout.tile_at(coord);
            let kept = have
                .intersect(want)
                .map(|t| t.volume())
                .unwrap_or(0);
            let missing = want.volume().saturating_sub(kept);
            let got = inbound.get(&dev).copied().unwrap_or(0.0);
            prop_assert!(
                got + 1e-6 >= missing as f64,
                "{src}->{dst}: device {dev} got {got} of {missing} missing"
            );
        }
    }

    /// Identity conversions never move a byte.
    #[test]
    fn identity_is_free(
        spec in spec_strategy(2),
        shape in prop::collection::vec(2u64..16, 2),
    ) {
        let c = cluster();
        let mesh = DeviceMesh::from_cluster(&c, 0, (2, 4), "m").unwrap();
        let mut g = TaskGraph::new();
        lower_intra_mesh_resharding(&mut g, &mesh, &spec, &spec, &shape, 1, &[]).unwrap();
        prop_assert_eq!(g.total_flow_bytes(), 0.0);
    }
}
