//! Property-based tests: every strategy's lowering delivers the data.
#![allow(clippy::single_range_in_vec_init)]

use crossmesh_collectives::{estimate_unit_task, lower_unit_task, CostParams, Strategy as Comm};
use crossmesh_mesh::{Receiver, Tile, UnitTask};
use crossmesh_netsim::{ClusterSpec, DeviceId, Engine, LinkParams, TaskGraph, Work};
use proptest::prelude::*;
use std::collections::BTreeMap;

const INTRA_BW: f64 = 100.0;
const INTER_BW: f64 = 1.0;

fn cluster() -> ClusterSpec {
    ClusterSpec::homogeneous(
        5,
        4,
        LinkParams::new(INTRA_BW, INTER_BW).with_latencies(0.0, 0.0),
    )
}

/// A random unit task: senders on hosts 0..2, receivers on hosts 2..5,
/// each receiver needing a random sub-range of a 1-D slice.
fn unit_task_strategy() -> impl Strategy<Value = UnitTask> {
    (
        8u64..200,                                   // slice volume
        prop::collection::btree_set(0u32..8, 1..4),  // sender devices (hosts 0-1)
        prop::collection::btree_set(8u32..20, 1..8), // receiver devices (hosts 2-4)
        any::<bool>(),                               // whole slice vs halves
    )
        .prop_map(|(volume, senders, receivers, whole)| {
            let c = cluster();
            UnitTask {
                index: 0,
                slice: Tile::new([0..volume]),
                bytes: volume,
                senders: senders
                    .into_iter()
                    .map(|d| (DeviceId(d), c.host_of(DeviceId(d))))
                    .collect(),
                receivers: receivers
                    .into_iter()
                    .enumerate()
                    .map(|(i, d)| Receiver {
                        device: DeviceId(d),
                        host: c.host_of(DeviceId(d)),
                        needed: if whole {
                            Tile::new([0..volume])
                        } else if i % 2 == 0 {
                            Tile::new([0..volume / 2])
                        } else {
                            Tile::new([volume / 2..volume])
                        },
                    })
                    .collect(),
            }
        })
}

fn all_strategies() -> [Comm; 5] {
    [
        Comm::SendRecv,
        Comm::LocalAllGather,
        Comm::GlobalAllGather,
        Comm::Broadcast { chunks: 16 },
        Comm::TreeBroadcast { chunks: 16 },
    ]
}

/// Bytes flowing *into* each device across the lowered fragment.
fn inbound_bytes(graph: &TaskGraph) -> BTreeMap<DeviceId, f64> {
    let mut m = BTreeMap::new();
    for (_, task) in graph.iter() {
        if let Work::Flow { dst, bytes, .. } = task.work {
            *m.entry(dst).or_insert(0.0) += bytes;
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every strategy completes and every receiver is fed at least the
    /// bytes it needs (send/recv exactly; the others ship whole slices or
    /// scatter parts).
    #[test]
    fn lowering_delivers_enough_bytes(task in unit_task_strategy()) {
        let c = cluster();
        for strategy in all_strategies() {
            let mut graph = TaskGraph::new();
            let lowered = lower_unit_task(&mut graph, &task, task.senders[0].0, strategy, &[]);
            let trace = Engine::new(&c).run(&graph).unwrap();
            prop_assert!(trace.makespan() > 0.0);
            prop_assert_eq!(lowered.receiver_done.len(), task.receivers.len());

            let inbound = inbound_bytes(&graph);
            let elem = task.bytes as f64 / task.slice.volume() as f64;
            for r in &task.receivers {
                let needed = r.needed.volume() as f64 * elem;
                let got = inbound.get(&r.device).copied().unwrap_or(0.0);
                prop_assert!(
                    got + 1e-6 >= needed,
                    "{strategy}: device {} got {got} of {needed}",
                    r.device
                );
            }
        }
    }

    /// Receiver completion markers never finish after the joint `done`.
    #[test]
    fn per_receiver_completions_bound_done(task in unit_task_strategy()) {
        let c = cluster();
        for strategy in all_strategies() {
            let mut graph = TaskGraph::new();
            let lowered = lower_unit_task(&mut graph, &task, task.senders[0].0, strategy, &[]);
            let trace = Engine::new(&c).run(&graph).unwrap();
            let done = trace.interval(lowered.done).finish;
            for &(_, t) in &lowered.receiver_done {
                prop_assert!(trace.interval(t).finish <= done + 1e-9);
            }
        }
    }

    /// The closed-form estimate stays within a factor of 2 of simulation
    /// for any single unit task in isolation.
    #[test]
    fn estimates_track_isolated_simulation(task in unit_task_strategy()) {
        let c = cluster();
        let params = CostParams {
            inter_bw: INTER_BW,
            intra_bw: INTRA_BW,
            inter_latency: 0.0,
            intra_latency: 0.0,
        };
        for strategy in all_strategies() {
            // The tree estimate is a coarser bound; hold it to 3x.
            let slack = if matches!(strategy, Comm::TreeBroadcast { .. }) {
                3.0
            } else {
                2.0
            };
            let mut graph = TaskGraph::new();
            let lowered = lower_unit_task(&mut graph, &task, task.senders[0].0, strategy, &[]);
            let trace = Engine::new(&c).run(&graph).unwrap();
            let sim = trace.interval(lowered.done).finish;
            let est = estimate_unit_task(&params, &task, task.senders[0].1, strategy);
            prop_assert!(
                est <= sim * slack + 1e-6 && sim <= est * slack + 1e-6,
                "{strategy}: est {est} vs sim {sim}"
            );
        }
    }

    /// Broadcast beats or matches every other strategy on multicast-heavy
    /// tasks (all receivers needing the whole slice).
    #[test]
    fn broadcast_is_optimal_for_full_multicast(task in unit_task_strategy()) {
        prop_assume!(task.receivers.iter().all(|r| r.needed == task.slice));
        let c = cluster();
        let run = |s: Comm| {
            let mut graph = TaskGraph::new();
            let lowered = lower_unit_task(&mut graph, &task, task.senders[0].0, s, &[]);
            Engine::new(&c).run(&graph).unwrap().interval(lowered.done).finish
        };
        let bc = run(Comm::Broadcast { chunks: 64 });
        for s in [
            Comm::SendRecv,
            Comm::LocalAllGather,
            Comm::GlobalAllGather,
            Comm::TreeBroadcast { chunks: 64 },
        ] {
            prop_assert!(bc <= run(s) * 1.05, "broadcast {bc} lost to {s}");
        }
    }
}
