//! Closed-form latency estimates (paper §3.1).
//!
//! The planner in `crossmesh-core` needs cheap duration estimates `T_i` for
//! unit communication tasks to balance loads and order schedules; these
//! mirror the paper's analytic expressions rather than running the
//! simulator.

use crate::strategy::Strategy;
use crossmesh_mesh::UnitTask;
use crossmesh_netsim::{ClusterSpec, HostId};
use serde::{Deserialize, Serialize};

/// Bandwidth/latency parameters for the closed-form estimates, assuming a
/// homogeneous cluster (the paper's setting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Inter-host (NIC) bandwidth, bytes/s.
    pub inter_bw: f64,
    /// Intra-host (NVLink-class) bandwidth, bytes/s.
    pub intra_bw: f64,
    /// Fixed latency of an inter-host flow, seconds.
    pub inter_latency: f64,
    /// Fixed latency of an intra-host flow, seconds.
    pub intra_latency: f64,
}

impl Default for CostParams {
    /// The paper's evaluation cluster class: NVLink-class 100 GB/s
    /// intra-host, 10 Gbps (1.25 GB/s) inter-host.
    fn default() -> Self {
        CostParams {
            inter_bw: 1.25e9,
            intra_bw: 100e9,
            inter_latency: 25e-6,
            intra_latency: 5e-6,
        }
    }
}

impl CostParams {
    /// Extracts parameters from a cluster (uses host 0; the workspace's
    /// evaluation clusters are homogeneous).
    pub fn from_cluster(cluster: &ClusterSpec) -> Self {
        let links = cluster.host(HostId(0)).links;
        CostParams {
            inter_bw: links.inter_host_bw,
            intra_bw: links.intra_host_bw,
            inter_latency: links.inter_host_latency,
            intra_latency: links.intra_host_latency,
        }
    }
}

/// Estimates the completion time of one unit task executed in isolation by
/// `sender_host` under `strategy`.
///
/// `A` below is the number of receiver hosts other than the sender's, `t`
/// the time for the slice to cross one inter-host link.
pub fn estimate_unit_task(
    params: &CostParams,
    task: &UnitTask,
    sender_host: HostId,
    strategy: Strategy,
) -> f64 {
    let bytes = task.bytes as f64;
    let bytes_per_elem = bytes / task.slice.volume() as f64;
    let t_inter = bytes / params.inter_bw;
    let remote_hosts = task
        .receiver_hosts()
        .into_iter()
        .filter(|&h| h != sender_host)
        .count() as f64;

    match strategy {
        Strategy::SendRecv => {
            // Each receiver gets its needed sub-tile; remote ones share the
            // sender NIC, local ones the NVLink.
            let (mut inter, mut intra) = (0.0, 0.0);
            for r in &task.receivers {
                let b = r.needed.volume() as f64 * bytes_per_elem;
                if r.host == sender_host {
                    intra += b;
                } else {
                    inter += b;
                }
            }
            inter / params.inter_bw + intra / params.intra_bw + params.inter_latency
        }
        Strategy::LocalAllGather => {
            // One slice copy per remote host through the sender NIC, then
            // the slowest intra-host reassembly.
            let mut worst_gather = 0.0f64;
            for h in task.receiver_hosts() {
                let b_h = task.receivers_on(h).len() as f64;
                if b_h > 1.0 {
                    let gather = (b_h - 1.0) / b_h * bytes / params.intra_bw;
                    worst_gather = worst_gather.max(gather);
                }
            }
            remote_hosts * t_inter + worst_gather + params.inter_latency
        }
        Strategy::GlobalAllGather => {
            if remote_hosts == 0.0 {
                // Purely intra-host: scatter + gather over NVLink.
                2.0 * bytes / params.intra_bw + params.intra_latency
            } else {
                // Scatter ~t + host-crossing ring all-gather ~t.
                2.0 * t_inter + params.inter_latency
            }
        }
        Strategy::Broadcast { chunks } => {
            // A chunked chain of hops completes in (slowest hop) plus one
            // chunk-time per additional hop: with `A` inter-host hops the
            // first inter-host hop is the bottleneck `t` and each further
            // inter-host hop adds `t/K` of pipeline fill (intra-host hops
            // add a negligible `t_intra/K`).
            let k = chunks.max(1) as f64;
            if remote_hosts == 0.0 {
                let hops = task.receivers.len() as f64;
                bytes / params.intra_bw * (1.0 + (hops - 1.0).max(0.0) / k) + params.intra_latency
            } else {
                t_inter * (1.0 + (remote_hosts - 1.0) / k) + params.inter_latency
            }
        }
        Strategy::MultiRail { rails, chunks } => {
            // The sprayed bytes drain over `rails` parallel NICs; each
            // remote receiver adds its needed bytes to the spray pool. The
            // two relay hops ride the fast intra-host links, pipelined per
            // chunk, so they contribute a bandwidth term of `2·b/intra` at
            // chunk granularity plus the pipeline fill.
            let r = rails.max(1) as f64;
            let k = chunks.max(1) as f64;
            let (mut inter, mut intra) = (0.0, 0.0);
            for rcv in &task.receivers {
                let b = rcv.needed.volume() as f64 * bytes_per_elem;
                if rcv.host == sender_host {
                    intra += b;
                } else {
                    inter += b;
                }
            }
            let relay_fill = 2.0 * (inter / k.max(1.0)) / params.intra_bw;
            inter / (r * params.inter_bw)
                + intra / params.intra_bw
                + relay_fill
                + params.inter_latency
        }
        Strategy::TreeBroadcast { chunks } => {
            // Inner tree nodes forward each chunk to two children, so the
            // bandwidth term doubles once there is more than one remote
            // host; the pipeline-fill term scales with the tree depth.
            let k = chunks.max(1) as f64;
            if remote_hosts == 0.0 {
                let hops = task.receivers.len() as f64;
                bytes / params.intra_bw * (1.0 + (hops - 1.0).max(0.0) / k) + params.intra_latency
            } else {
                let fanout = remote_hosts.min(2.0);
                let depth = (remote_hosts + 1.0).log2().ceil();
                fanout * t_inter * (1.0 + (depth - 1.0).max(0.0) / k) + params.inter_latency
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use crossmesh_mesh::{Receiver, Tile};
    use crossmesh_netsim::DeviceId;

    fn params() -> CostParams {
        CostParams {
            inter_bw: 1.0,
            intra_bw: 100.0,
            inter_latency: 0.0,
            intra_latency: 0.0,
        }
    }

    fn task(bytes: u64, hosts: u32, per_host: u32) -> UnitTask {
        UnitTask {
            index: 0,
            slice: Tile::new([0..bytes]),
            bytes,
            senders: vec![(DeviceId(0), HostId(0))],
            receivers: (1..=hosts)
                .flat_map(|h| (0..per_host).map(move |l| (h, l)))
                .map(|(h, l)| Receiver {
                    device: DeviceId(h * 8 + l),
                    host: HostId(h),
                    needed: Tile::new([0..bytes]),
                })
                .collect(),
        }
    }

    #[test]
    fn paper_ordering_of_strategies() {
        // T^sr = ABt  >  T^srla = At  >  T^srga = 2t  >  T^bc ≈ t.
        let p = params();
        let t = task(100, 4, 2);
        let sr = estimate_unit_task(&p, &t, HostId(0), Strategy::SendRecv);
        let la = estimate_unit_task(&p, &t, HostId(0), Strategy::LocalAllGather);
        let ga = estimate_unit_task(&p, &t, HostId(0), Strategy::GlobalAllGather);
        let bc = estimate_unit_task(&p, &t, HostId(0), Strategy::Broadcast { chunks: 100 });
        assert!(sr > la && la > ga && ga > bc, "{sr} {la} {ga} {bc}");
        assert!((sr - 800.0).abs() < 1.0, "ABt = 8*100");
        assert!((la - 400.5).abs() < 1.0, "At + gather");
        assert!((ga - 200.0).abs() < 1.0, "2t");
        assert!((bc - 103.0).abs() < 1.0, "t(1 + (A-1)/K)");
    }

    #[test]
    fn broadcast_to_local_receivers_avoids_nic() {
        let p = params();
        let mut t = task(100, 1, 4);
        for r in &mut t.receivers {
            r.host = HostId(0);
        }
        let bc = estimate_unit_task(&p, &t, HostId(0), Strategy::broadcast());
        assert!(bc < 2.0, "intra-host broadcast should be ~1s, got {bc}");
    }

    #[test]
    fn send_recv_scales_with_needed_bytes_only() {
        let p = params();
        let mut t = task(100, 1, 2);
        t.receivers[0].needed = Tile::new([0..50]);
        t.receivers[1].needed = Tile::new([50..100]);
        let sr = estimate_unit_task(&p, &t, HostId(0), Strategy::SendRecv);
        assert!(
            (sr - 100.0).abs() < 1.0,
            "halves sum to the slice, got {sr}"
        );
    }

    #[test]
    fn multi_rail_divides_the_inter_host_term_by_rails() {
        let p = params();
        let t = task(100, 1, 1);
        let sr = estimate_unit_task(&p, &t, HostId(0), Strategy::SendRecv);
        let mr = estimate_unit_task(&p, &t, HostId(0), Strategy::multi_rail(4));
        assert!((sr - 100.0).abs() < 1.0, "got {sr}");
        assert!(
            mr < sr / 3.0,
            "4 rails should near-quarter it: {mr} vs {sr}"
        );
        assert!(mr >= 25.0 - 1e-9, "cannot beat the 4-rail bound: {mr}");
    }

    #[test]
    fn from_cluster_reads_link_params() {
        let c = ClusterSpec::homogeneous(2, 2, crossmesh_netsim::LinkParams::new(100e9, 1.25e9));
        let p = CostParams::from_cluster(&c);
        assert_eq!(p.inter_bw, 1.25e9);
        assert_eq!(p.intra_bw, 100e9);
    }
}
