//! Intra-mesh resharding: layout conversion *within* one device mesh
//! (Figure 1b of the paper — the communication of pure intra-operator
//! parallelism, which the paper contrasts with cross-mesh resharding).
//!
//! When an operator requires its input with a different sharding spec than
//! the producer emitted, the mesh's devices exchange tiles. Collective
//! primitives (all-gather, all-to-all) cover the common cases; this module
//! lowers the fully general case as a replica-aware tile exchange: every
//! device fetches each missing piece of its new tile from the nearest
//! holder (same device → no copy; same host → NVLink; otherwise NIC), with
//! round-robin load balancing among equally-near holders.

use crate::ring::RingResult;
use crossmesh_mesh::{DeviceMesh, Layout, MeshError, ShardingSpec};
use crossmesh_netsim::{DeviceId, TaskGraph, TaskId, Work};
use std::collections::HashMap;

/// Lowers the conversion of a tensor on `mesh` from `src_spec` to
/// `dst_spec` into `graph`, gated by `ready` (typically the producing
/// compute tasks). Returns per-device completion markers.
///
/// # Errors
///
/// Propagates layout errors (rank mismatch, empty tensor).
pub fn lower_intra_mesh_resharding(
    graph: &mut TaskGraph,
    mesh: &DeviceMesh,
    src_spec: &ShardingSpec,
    dst_spec: &ShardingSpec,
    shape: &[u64],
    elem_bytes: u64,
    ready: &[TaskId],
) -> Result<RingResult, MeshError> {
    let src_layout = Layout::new(mesh, src_spec, shape)?;
    let dst_layout = Layout::new(mesh, dst_spec, shape)?;

    // Holder list per unique source slice, for nearest-replica selection.
    let mut received: HashMap<DeviceId, Vec<TaskId>> = HashMap::new();
    let mut round_robin: HashMap<usize, usize> = HashMap::new();

    let slices = src_layout.unique_slices();
    for coord in mesh.coords() {
        let device = mesh.device(coord);
        let host = mesh.host(coord);
        let own = src_layout.tile_at(coord);
        let want = dst_layout.tile_at(coord);
        if want.is_empty() {
            continue;
        }
        for (slice_idx, (slice, holders)) in slices.iter().enumerate() {
            let Some(inter) = want.intersect(slice) else {
                continue;
            };
            // Already local?
            if own.contains(&inter) {
                continue;
            }
            let bytes = inter.volume() * elem_bytes;
            // Nearest holder: same host first, then round-robin.
            let holder_devices: Vec<DeviceId> = holders.iter().map(|&c| mesh.device(c)).collect();
            let local = holders
                .iter()
                .position(|&c| mesh.host(c) == host && mesh.device(c) != device);
            let src_device = match local {
                Some(i) => holder_devices[i],
                None => {
                    let rr = round_robin.entry(slice_idx).or_insert(0);
                    let pick = holder_devices[*rr % holder_devices.len()];
                    *rr += 1;
                    pick
                }
            };
            if src_device == device {
                continue;
            }
            let f = graph.add_labeled(
                Work::flow(src_device, device, bytes as f64),
                ready.iter().copied(),
                Some(format!("intra {src_device}->{device}")),
            );
            received.entry(device).or_default().push(f);
        }
    }

    let done_per_device: Vec<TaskId> = mesh
        .coords()
        .map(|c| {
            let device = mesh.device(c);
            let deps = received
                .remove(&device)
                .unwrap_or_default()
                .into_iter()
                .chain(ready.iter().copied());
            graph.add(Work::Marker, deps)
        })
        .collect();
    let done = graph.add(Work::Marker, done_per_device.iter().copied());
    Ok(RingResult {
        done_per_device,
        done,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_netsim::{ClusterSpec, Engine, LinkParams};

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(2, 4, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0))
    }

    fn run(src: &str, dst: &str, shape: &[u64]) -> (f64, f64) {
        let c = cluster();
        let mesh = DeviceMesh::from_cluster(&c, 0, (2, 4), "m").unwrap();
        let mut g = TaskGraph::new();
        let r = lower_intra_mesh_resharding(
            &mut g,
            &mesh,
            &src.parse().unwrap(),
            &dst.parse().unwrap(),
            shape,
            1,
            &[],
        )
        .unwrap();
        let t = Engine::new(&c).run(&g).unwrap();
        (
            t.interval(r.done).finish,
            t.usage().total_cross_host_bytes(),
        )
    }

    #[test]
    fn identity_conversion_is_free() {
        let (time, cross) = run("S0R", "S0R", &[16, 16]);
        assert_eq!(time, 0.0);
        assert_eq!(cross, 0.0);
    }

    #[test]
    fn narrowing_replication_is_free() {
        // RR -> S0R: every device already holds its (smaller) new tile.
        let (time, cross) = run("RR", "S0R", &[16, 16]);
        assert_eq!(time, 0.0);
        assert_eq!(cross, 0.0);
    }

    #[test]
    fn all_gather_stays_on_host_when_replicas_allow() {
        // S1R -> RR on a (2,4) mesh: dim 0 sharded over the intra-host
        // axis, so every missing piece has a same-host holder.
        let (time, cross) = run("S1R", "RR", &[16, 16]);
        assert!(time > 0.0);
        assert_eq!(cross, 0.0, "no NIC traffic needed");
    }

    #[test]
    fn cross_host_exchange_when_sharded_over_hosts() {
        // S0R -> RR: each host must fetch the other host's half.
        let (time, cross) = run("S0R", "RR", &[16, 16]);
        assert!(time > 0.0);
        assert!(cross > 0.0);
        // Each of 8 devices misses 128 elements held only remotely... but
        // the first row's devices hold [0..8) and need [8..16) from host 1
        // and vice versa: 4 devices/host x 128 bytes inbound.
        assert_eq!(cross, 8.0 * 128.0);
    }

    #[test]
    fn transpose_resharding_moves_data() {
        // S0R -> RS0: classic all-to-all-ish conversion.
        let (time, cross) = run("S0R", "RS0", &[16, 16]);
        assert!(time > 0.0);
        assert!(cross > 0.0);
    }

    #[test]
    fn ready_gates_the_exchange() {
        let c = cluster();
        let mesh = DeviceMesh::from_cluster(&c, 0, (2, 4), "m").unwrap();
        let mut g = TaskGraph::new();
        let gate = g.add(Work::compute(c.device(0, 0), 2.0), []);
        let r = lower_intra_mesh_resharding(
            &mut g,
            &mesh,
            &"S0R".parse().unwrap(),
            &"RR".parse().unwrap(),
            &[16, 16],
            1,
            &[gate],
        )
        .unwrap();
        let t = Engine::new(&c).run(&g).unwrap();
        assert!(t.interval(r.done).finish >= 2.0);
    }
}
