//! Lowering a unit communication task onto the simulator under a strategy.

use crate::ring::ring_all_gather;
use crate::strategy::Strategy;
use crossmesh_mesh::UnitTask;
use crossmesh_netsim::{ClusterSpec, DeviceId, HostId, TaskGraph, TaskId, Work};
use std::collections::BTreeMap;

/// Handles into the lowered communication fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredComm {
    /// Per receiver device: the task that completes when that device holds
    /// everything it needs from this unit task.
    pub receiver_done: Vec<(DeviceId, TaskId)>,
    /// Joins all receivers (and the sender's obligations).
    pub done: TaskId,
}

/// Lowers `task` into `graph` using `strategy`, with `sender` as the chosen
/// replica (one of `task.senders`) and `deps` gating the first byte.
///
/// Returns per-receiver completion handles so downstream consumers (e.g.
/// a pipeline stage's forward compute) can depend on exactly their data.
///
/// # Panics
///
/// Panics if `sender` is not one of the task's replica devices.
pub fn lower_unit_task(
    graph: &mut TaskGraph,
    task: &UnitTask,
    sender: DeviceId,
    strategy: Strategy,
    deps: &[TaskId],
) -> LoweredComm {
    lower_unit_task_on(graph, task, sender, strategy, deps, None)
}

/// [`lower_unit_task`] with an optional cluster topology. Strategies that
/// relay through co-hosted devices ([`Strategy::MultiRail`] needs the
/// sender's and receivers' host peers to reach every rail NIC) use it;
/// without a cluster they degrade gracefully to direct chunked flows.
///
/// # Panics
///
/// Panics if `sender` is not one of the task's replica devices.
pub fn lower_unit_task_on(
    graph: &mut TaskGraph,
    task: &UnitTask,
    sender: DeviceId,
    strategy: Strategy,
    deps: &[TaskId],
    cluster: Option<&ClusterSpec>,
) -> LoweredComm {
    let sender_host = task
        .senders
        .iter()
        .find(|&&(d, _)| d == sender)
        .map(|&(_, h)| h)
        .unwrap_or_else(|| panic!("device {sender} does not hold slice {}", task.slice));

    if task.receivers.is_empty() {
        let done = graph.add(Work::Marker, deps.iter().copied());
        return LoweredComm {
            receiver_done: Vec::new(),
            done,
        };
    }

    let bytes = task.bytes as f64;
    let bytes_per_elem = bytes / task.slice.volume() as f64;

    let receiver_done = match strategy {
        Strategy::SendRecv => {
            // P2P exactly the needed sub-tile to each receiver.
            task.receivers
                .iter()
                .map(|r| {
                    let needed = r.needed.volume() as f64 * bytes_per_elem;
                    let f = graph.add_labeled(
                        Work::flow(sender, r.device, needed),
                        deps.iter().copied(),
                        Some(format!("sr u{} {}->{}", task.index, sender, r.device)),
                    );
                    (r.device, f)
                })
                .collect()
        }
        Strategy::LocalAllGather => {
            // One copy of the slice per receiver host, scattered over its
            // receiver devices, reassembled by an intra-host all-gather.
            let mut by_host: BTreeMap<HostId, Vec<DeviceId>> = BTreeMap::new();
            for r in &task.receivers {
                by_host.entry(r.host).or_default().push(r.device);
            }
            let mut out = Vec::new();
            for devices in by_host.values() {
                let n = devices.len();
                if n == 1 {
                    let f = graph.add_labeled(
                        Work::flow(sender, devices[0], bytes),
                        deps.iter().copied(),
                        Some(format!("la u{} copy", task.index)),
                    );
                    out.push((devices[0], f));
                    continue;
                }
                let part = bytes / n as f64;
                let scatter: Vec<TaskId> = devices
                    .iter()
                    .map(|&d| {
                        graph.add_labeled(
                            Work::flow(sender, d, part),
                            deps.iter().copied(),
                            Some(format!("la u{} scatter", task.index)),
                        )
                    })
                    .collect();
                let ready: Vec<Vec<TaskId>> = scatter.iter().map(|&f| vec![f]).collect();
                let ring = ring_all_gather(graph, devices, &vec![part; n], &ready);
                out.extend(devices.iter().copied().zip(ring.done_per_device));
            }
            out
        }
        Strategy::GlobalAllGather => {
            // Scatter over all receivers (host-grouped order), then a
            // global ring all-gather that may cross hosts.
            let mut ordered: Vec<&crossmesh_mesh::Receiver> = task.receivers.iter().collect();
            ordered.sort_by_key(|r| (r.host, r.device));
            let devices: Vec<DeviceId> = ordered.iter().map(|r| r.device).collect();
            let n = devices.len();
            if n == 1 {
                let f = graph.add(Work::flow(sender, devices[0], bytes), deps.iter().copied());
                vec![(devices[0], f)]
            } else {
                let part = bytes / n as f64;
                let scatter: Vec<TaskId> = devices
                    .iter()
                    .map(|&d| {
                        graph.add_labeled(
                            Work::flow(sender, d, part),
                            deps.iter().copied(),
                            Some(format!("ga u{} scatter", task.index)),
                        )
                    })
                    .collect();
                let ready: Vec<Vec<TaskId>> = scatter.iter().map(|&f| vec![f]).collect();
                let ring = ring_all_gather(graph, &devices, &vec![part; n], &ready);
                devices.into_iter().zip(ring.done_per_device).collect()
            }
        }
        Strategy::Broadcast { chunks } => {
            lower_broadcast(graph, task, sender, sender_host, chunks, deps)
        }
        Strategy::MultiRail { rails, chunks } => lower_multi_rail(
            graph,
            task,
            sender,
            sender_host,
            rails,
            chunks,
            deps,
            cluster,
        ),
        Strategy::TreeBroadcast { chunks } => {
            lower_tree_broadcast(graph, task, sender, sender_host, chunks, deps)
        }
    };

    let done = graph.add(Work::Marker, receiver_done.iter().map(|&(_, t)| t));
    LoweredComm {
        receiver_done,
        done,
    }
}

/// Pipelined ring broadcast: the ring starts at the sender, visits any
/// receivers co-located with it, then each remaining receiver host in
/// ascending order — so the slice crosses the inter-host network exactly
/// once per receiver host.
fn lower_broadcast(
    graph: &mut TaskGraph,
    task: &UnitTask,
    sender: DeviceId,
    sender_host: HostId,
    chunks: u32,
    deps: &[TaskId],
) -> Vec<(DeviceId, TaskId)> {
    let mut ordered: Vec<&crossmesh_mesh::Receiver> = task.receivers.iter().collect();
    ordered.sort_by_key(|r| (r.host != sender_host, r.host, r.device));
    let ring: Vec<DeviceId> = std::iter::once(sender)
        .chain(ordered.iter().map(|r| r.device))
        .collect();
    let hops = ring.len() - 1;
    let bytes = task.bytes as f64;
    // No point cutting more chunks than bytes; keep at least one.
    let k = chunks.max(1).min(bytes.max(1.0) as u32).max(1) as usize;
    let chunk_bytes = bytes / k as f64;

    // last_on_hop[i]: previous chunk's flow on hop i (serialises the link);
    // the per-chunk chain serialises store-and-forward.
    let mut last_on_hop: Vec<Option<TaskId>> = vec![None; hops];
    let mut last_into_receiver: Vec<TaskId> = Vec::new();
    for j in 0..k {
        let mut prev_hop: Option<TaskId> = None;
        last_into_receiver.clear();
        for (i, hop) in last_on_hop.iter_mut().enumerate() {
            let mut fdeps: Vec<TaskId> = Vec::new();
            match prev_hop {
                Some(p) => fdeps.push(p),
                None => fdeps.extend(deps.iter().copied()),
            }
            if let Some(l) = *hop {
                fdeps.push(l);
            }
            let f = graph.add_labeled(
                Work::flow(ring[i], ring[i + 1], chunk_bytes),
                fdeps,
                Some(format!("bc u{} c{j} h{i}", task.index)),
            );
            *hop = Some(f);
            prev_hop = Some(f);
            if j == k - 1 {
                last_into_receiver.push(f);
            }
        }
    }
    ordered
        .iter()
        .map(|r| r.device)
        .zip(last_into_receiver)
        .collect()
}

/// RailS-style multi-rail spray: each receiver's needed bytes are cut into
/// chunks; every chunk is assigned to the rail with the most residual
/// capacity (least accumulated bytes so far, ties to the lowest rail) and
/// routed `sender → rail relay on the sender host → rail relay on the
/// receiver host → receiver`, where the relay for rail `r` is the first
/// co-hosted device with local index ≡ r (mod rails). Intra-host relay hops
/// are skipped when an endpoint already sits on the target rail; without a
/// cluster topology no relays are known and chunks fly directly.
///
/// Per rail, chunks pipeline store-and-forward exactly like the ring
/// broadcast: hop n+1 of a chunk waits for hop n, and a link carries one
/// chunk at a time.
/// The outcome of the multi-rail greedy spray for one unit task: how many
/// bytes land on each *logical* rail, and the largest single chunk.
///
/// This is the schedule [`lower_unit_task_on`] realizes for
/// [`Strategy::MultiRail`]; `crossmesh-check` re-derives it to prove rail
/// assignments stay within per-rail capacity without lowering anything.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRailSpray {
    /// Bytes assigned to each logical rail (length = `rails`).
    pub rail_bytes: Vec<f64>,
    /// The largest chunk the spray moves, bytes.
    pub max_chunk_bytes: f64,
}

/// Computes the greedy chunk-to-rail assignment [`Strategy::MultiRail`]
/// lowers to, without building a graph: each remote receiver's needed
/// bytes are cut into chunks and every chunk goes to the rail with the
/// least accumulated bytes (ties to the lowest rail). Co-hosted receivers
/// ride NVLink and are not sprayed.
pub fn multi_rail_spray(
    task: &UnitTask,
    sender_host: HostId,
    rails: u32,
    chunks: u32,
) -> MultiRailSpray {
    let rails = rails.max(1) as usize;
    let bytes_per_elem = task.bytes as f64 / task.slice.volume() as f64;
    let mut rail_bytes = vec![0.0f64; rails];
    let mut max_chunk_bytes = 0.0f64;
    for r in &task.receivers {
        if r.host == sender_host {
            continue;
        }
        let needed = r.needed.volume() as f64 * bytes_per_elem;
        let k = chunks.max(1).min(needed.max(1.0) as u32).max(1) as usize;
        let chunk_bytes = needed / k as f64;
        max_chunk_bytes = max_chunk_bytes.max(chunk_bytes);
        for _ in 0..k {
            let rail = rail_bytes
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i)
                .expect("at least one rail");
            rail_bytes[rail] += chunk_bytes;
        }
    }
    MultiRailSpray {
        rail_bytes,
        max_chunk_bytes,
    }
}

#[allow(clippy::too_many_arguments)]
fn lower_multi_rail(
    graph: &mut TaskGraph,
    task: &UnitTask,
    sender: DeviceId,
    sender_host: HostId,
    rails: u32,
    chunks: u32,
    deps: &[TaskId],
    cluster: Option<&ClusterSpec>,
) -> Vec<(DeviceId, TaskId)> {
    let rails = rails.max(1) as usize;
    let bytes = task.bytes as f64;
    let bytes_per_elem = bytes / task.slice.volume() as f64;

    // relay_for(host, rail): the first device on `host` whose local index
    // is congruent to `rail`, preferring `preferred` when it already sits
    // on that rail.
    let relay_for = |host: HostId, rail: usize, preferred: DeviceId| -> DeviceId {
        let Some(c) = cluster else { return preferred };
        if !c.contains(preferred) || c.host_of(preferred) != host {
            return preferred;
        }
        if c.local_index(preferred) as usize % rails == rail {
            return preferred;
        }
        c.devices_on(host)
            .find(|&d| c.local_index(d) as usize % rails == rail)
            .unwrap_or(preferred)
    };

    // Residual-capacity spray state, shared across this unit's receivers:
    // bytes already assigned per rail.
    let mut rail_bytes = vec![0.0f64; rails];
    let mut out = Vec::new();
    for r in &task.receivers {
        let needed = r.needed.volume() as f64 * bytes_per_elem;
        if r.host == sender_host {
            // Co-hosted receiver: one fast intra-host copy, no spraying.
            let f = graph.add_labeled(
                Work::flow(sender, r.device, needed),
                deps.iter().copied(),
                Some(format!("mr u{} local {}->{}", task.index, sender, r.device)),
            );
            out.push((r.device, f));
            continue;
        }
        let k = chunks.max(1).min(needed.max(1.0) as u32).max(1) as usize;
        let chunk_bytes = needed / k as f64;
        // last flow per (rail, hop) for link serialization.
        let mut last_on_hop: BTreeMap<(usize, usize), TaskId> = BTreeMap::new();
        let mut finals: Vec<TaskId> = Vec::new();
        for j in 0..k {
            let rail = rail_bytes
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i)
                .expect("at least one rail");
            rail_bytes[rail] += chunk_bytes;
            let relay_src = relay_for(sender_host, rail, sender);
            let relay_dst = relay_for(r.host, rail, r.device);
            let mut path = vec![sender];
            for d in [relay_src, relay_dst, r.device] {
                if *path.last().expect("non-empty") != d {
                    path.push(d);
                }
            }
            let mut prev_hop: Option<TaskId> = None;
            for (hop, pair) in path.windows(2).enumerate() {
                let mut fdeps: Vec<TaskId> = Vec::new();
                match prev_hop {
                    Some(p) => fdeps.push(p),
                    None => fdeps.extend(deps.iter().copied()),
                }
                if let Some(&l) = last_on_hop.get(&(rail, hop)) {
                    fdeps.push(l);
                }
                let f = graph.add_labeled(
                    Work::flow(pair[0], pair[1], chunk_bytes),
                    fdeps,
                    Some(format!("mr u{} c{j} r{rail} h{hop}", task.index)),
                );
                last_on_hop.insert((rail, hop), f);
                prev_hop = Some(f);
            }
            finals.push(prev_hop.expect("path has at least one hop"));
        }
        // The receiver holds its slice when every sprayed chunk landed.
        let done = graph.add(Work::Marker, finals);
        out.push((r.device, done));
    }
    out
}

/// Pipelined binary-tree broadcast: receiver hosts form a binary tree
/// rooted at the sender; each host's first receiver device relays chunks
/// to its two child hosts and along its own intra-host chain.
fn lower_tree_broadcast(
    graph: &mut TaskGraph,
    task: &UnitTask,
    sender: DeviceId,
    sender_host: HostId,
    chunks: u32,
    deps: &[TaskId],
) -> Vec<(DeviceId, TaskId)> {
    // Group receivers by host, sender-host receivers first (they hang off
    // the root directly over fast links).
    let mut by_host: Vec<(HostId, Vec<DeviceId>)> = Vec::new();
    {
        let mut ordered: Vec<&crossmesh_mesh::Receiver> = task.receivers.iter().collect();
        ordered.sort_by_key(|r| (r.host != sender_host, r.host, r.device));
        for r in ordered {
            match by_host.last_mut() {
                Some((h, devs)) if *h == r.host => devs.push(r.device),
                _ => by_host.push((r.host, vec![r.device])),
            }
        }
    }
    let bytes = task.bytes as f64;
    let k = chunks.max(1).min(bytes.max(1.0) as u32).max(1) as usize;
    let chunk_bytes = bytes / k as f64;

    // Tree nodes: 0 is the sender's own host (root); remote receiver
    // hosts follow in order. node_rep[i] = device that relays for node i.
    let local = by_host
        .iter()
        .position(|(h, _)| *h == sender_host)
        .map(|i| by_host[i].clone());
    let remote: Vec<(HostId, Vec<DeviceId>)> = by_host
        .iter()
        .filter(|(h, _)| *h != sender_host)
        .cloned()
        .collect();

    // arrival[j][node]: task delivering chunk j to the node's rep (root:
    // the external deps). Chains: per-edge and per-intra-hop serialization.
    let mut completions: Vec<(DeviceId, TaskId)> = Vec::new();
    // last flow per (parent node, child node) edge and per intra-host hop.
    let mut last_on_edge: std::collections::HashMap<(usize, usize), TaskId> =
        std::collections::HashMap::new();
    let mut last_intra: std::collections::HashMap<(usize, usize), TaskId> =
        std::collections::HashMap::new();
    // arrivals of the previous chunk per node (None for root).
    let n_remote = remote.len();
    let mut arrival: Vec<Option<TaskId>> = vec![None; n_remote + 1];
    for j in 0..k {
        let mut next_arrival: Vec<Option<TaskId>> = vec![None; n_remote + 1];
        for node in 0..=n_remote {
            let rep: DeviceId = if node == 0 {
                sender
            } else {
                remote[node - 1].1[0]
            };
            let parent_arrived: Vec<TaskId> = if node == 0 {
                if j == 0 {
                    deps.to_vec()
                } else {
                    Vec::new()
                }
            } else {
                arrival[node].into_iter().collect()
            };
            // Relay to children in the host tree.
            for c in [2 * node + 1, 2 * node + 2] {
                if c > n_remote {
                    continue;
                }
                let child_rep = remote[c - 1].1[0];
                let mut fdeps = parent_arrived.clone();
                if let Some(&l) = last_on_edge.get(&(node, c)) {
                    fdeps.push(l);
                }
                let f = graph.add_labeled(
                    Work::flow(rep, child_rep, chunk_bytes),
                    fdeps,
                    Some(format!("tb u{} c{j} {node}->{c}", task.index)),
                );
                last_on_edge.insert((node, c), f);
                next_arrival[c] = Some(f);
                if j == k - 1 {
                    completions.push((child_rep, f));
                }
            }
            // Intra-host chain from the rep through local receivers.
            let locals: &[DeviceId] = if node == 0 {
                local.as_ref().map(|(_, d)| d.as_slice()).unwrap_or(&[])
            } else {
                &remote[node - 1].1[1..]
            };
            let mut prev_dev = rep;
            let mut prev_task: Option<TaskId> = None;
            for (hop, &dev) in locals.iter().enumerate() {
                let mut fdeps: Vec<TaskId> = match prev_task {
                    Some(t) => vec![t],
                    None => parent_arrived.clone(),
                };
                if let Some(&l) = last_intra.get(&(node, hop)) {
                    fdeps.push(l);
                }
                let f = graph.add_labeled(
                    Work::flow(prev_dev, dev, chunk_bytes),
                    fdeps,
                    Some(format!("tb u{} c{j} local", task.index)),
                );
                last_intra.insert((node, hop), f);
                prev_dev = dev;
                prev_task = Some(f);
                if j == k - 1 {
                    completions.push((dev, f));
                }
            }
        }
        arrival = next_arrival;
    }
    completions
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use crossmesh_mesh::{Receiver, Tile};
    use crossmesh_netsim::{ClusterSpec, Engine, LinkParams};

    /// Builds a unit task: sender(s) on host 0, `a` receiver hosts x `b`
    /// receiver devices starting at host 1, all needing the full slice.
    fn multicast_task(cluster: &ClusterSpec, volume: u64, a: u32, b: u32) -> UnitTask {
        let receivers = (1..=a)
            .flat_map(|h| (0..b).map(move |l| (h, l)))
            .map(|(h, l)| Receiver {
                device: cluster.device(h, l),
                host: HostId(h),
                needed: Tile::new([0..volume]),
            })
            .collect();
        UnitTask {
            index: 0,
            slice: Tile::new([0..volume]),
            bytes: volume,
            senders: vec![(cluster.device(0, 0), HostId(0))],
            receivers,
        }
    }

    fn run(cluster: &ClusterSpec, task: &UnitTask, strategy: Strategy) -> f64 {
        let mut g = TaskGraph::new();
        let lowered = lower_unit_task(&mut g, task, task.senders[0].0, strategy, &[]);
        let t = Engine::new(cluster).run(&g).unwrap();
        t.interval(lowered.done).finish
    }

    fn cluster(hosts: u32, devs: u32) -> ClusterSpec {
        // NVLink 100 B/s, NIC 1 B/s, zero latency: t = bytes seconds.
        ClusterSpec::homogeneous(
            hosts,
            devs,
            LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0),
        )
    }

    #[test]
    fn send_recv_latency_is_a_times_b_times_t() {
        // 2 hosts x 2 devices receiving 10 bytes each through one NIC:
        // T = A*B*t = 4 * 10 = 40 s.
        let c = cluster(3, 2);
        let task = multicast_task(&c, 10, 2, 2);
        let d = run(&c, &task, Strategy::SendRecv);
        assert!((d - 40.0).abs() < 1e-6, "got {d}");
    }

    #[test]
    fn local_allgather_latency_is_a_times_t() {
        // Each of the A=2 hosts receives one copy (t each through the
        // sender NIC) then gathers intra-host (fast): T ≈ A*t = 20.
        let c = cluster(3, 2);
        let task = multicast_task(&c, 10, 2, 2);
        let d = run(&c, &task, Strategy::LocalAllGather);
        assert!((d - 20.0).abs() < 0.3, "got {d}");
    }

    #[test]
    fn global_allgather_latency_is_2t() {
        // Scatter t + global all-gather ≈ t: T ≈ 2t = 20 (A=2, B=2).
        let c = cluster(3, 2);
        let task = multicast_task(&c, 12, 2, 2);
        let d = run(&c, &task, Strategy::GlobalAllGather);
        let t_unit = 12.0;
        assert!(
            d > 1.5 * t_unit && d < 2.3 * t_unit,
            "expected about 2t = {}, got {d}",
            2.0 * t_unit
        );
    }

    #[test]
    fn broadcast_latency_approaches_t() {
        // T = t * (1 + A/K): with K=32 and A=3 receiver hosts, ~1.1*t.
        let c = cluster(4, 2);
        let task = multicast_task(&c, 32, 3, 2);
        let d = run(&c, &task, Strategy::Broadcast { chunks: 32 });
        let t_unit = 32.0;
        assert!(d < 1.2 * t_unit, "expected close to t = {t_unit}, got {d}");
        assert!(d >= t_unit - 1e-6, "cannot beat the bandwidth bound");
    }

    #[test]
    fn broadcast_matches_closed_form() {
        // Exactly T = t + A*t/K for a line of single-device hosts.
        let c = cluster(4, 1);
        let task = multicast_task(&c, 60, 3, 1);
        let k = 6;
        let d = run(&c, &task, Strategy::Broadcast { chunks: k });
        let t_unit = 60.0;
        // Ring hops: sender -> h1 -> h2 -> h3; 2 extra inter-host hops
        // after the first, each pipelined: T = t * (1 + (hops-1)/K).
        let expect = t_unit * (1.0 + 2.0 / k as f64);
        assert!((d - expect).abs() < 1e-6, "expected {expect}, got {d}");
    }

    #[test]
    fn tree_broadcast_covers_all_receivers() {
        let c = cluster(4, 2);
        let task = multicast_task(&c, 32, 3, 2);
        let mut g = TaskGraph::new();
        let lowered = lower_unit_task(
            &mut g,
            &task,
            task.senders[0].0,
            Strategy::TreeBroadcast { chunks: 8 },
            &[],
        );
        assert_eq!(lowered.receiver_done.len(), task.receivers.len());
        let t = Engine::new(&c).run(&g).unwrap();
        assert!(t.interval(lowered.done).finish > 0.0);
    }

    #[test]
    fn ring_beats_tree_for_large_messages() {
        // Tree root sends every chunk twice: ~2t vs the ring's ~t.
        let c = cluster(5, 2);
        let task = multicast_task(&c, 64, 4, 2);
        let ring = run(&c, &task, Strategy::Broadcast { chunks: 32 });
        let tree = run(&c, &task, Strategy::TreeBroadcast { chunks: 32 });
        assert!(
            tree > 1.5 * ring,
            "tree {tree} should pay ~2x bandwidth vs ring {ring}"
        );
        // But the tree still beats naive send/recv.
        let sr = run(&c, &task, Strategy::SendRecv);
        assert!(tree < sr);
    }

    #[test]
    fn send_recv_ships_only_needed_subtiles() {
        let c = cluster(2, 2);
        let mut task = multicast_task(&c, 10, 1, 2);
        // Receivers need disjoint halves.
        task.receivers[0].needed = Tile::new([0..5]);
        task.receivers[1].needed = Tile::new([5..10]);
        let d = run(&c, &task, Strategy::SendRecv);
        // 5 + 5 bytes through the NIC at 1 B/s.
        assert!((d - 10.0).abs() < 1e-6, "got {d}");
    }

    #[test]
    fn intra_host_receivers_use_fast_links() {
        // Receivers on the sender's own host: broadcast never touches the
        // NIC.
        let c = cluster(1, 4);
        let task = UnitTask {
            index: 0,
            slice: Tile::new([0..100]),
            bytes: 100,
            senders: vec![(c.device(0, 0), HostId(0))],
            receivers: (1..4)
                .map(|l| Receiver {
                    device: c.device(0, l),
                    host: HostId(0),
                    needed: Tile::new([0..100]),
                })
                .collect(),
        };
        let d = run(&c, &task, Strategy::broadcast());
        assert!(d < 2.0, "intra-host broadcast should be fast, got {d}");
    }

    #[test]
    fn receiver_completions_are_ordered_along_the_ring() {
        let c = cluster(4, 1);
        let task = multicast_task(&c, 30, 3, 1);
        let mut g = TaskGraph::new();
        let lowered = lower_unit_task(
            &mut g,
            &task,
            task.senders[0].0,
            Strategy::Broadcast { chunks: 10 },
            &[],
        );
        let t = Engine::new(&c).run(&g).unwrap();
        let finishes: Vec<f64> = lowered
            .receiver_done
            .iter()
            .map(|&(_, id)| t.interval(id).finish)
            .collect();
        assert!(finishes.windows(2).all(|w| w[0] <= w[1] + 1e-9));
    }

    #[test]
    #[should_panic(expected = "does not hold slice")]
    fn wrong_sender_panics() {
        let c = cluster(2, 2);
        let task = multicast_task(&c, 10, 1, 2);
        let mut g = TaskGraph::new();
        lower_unit_task(&mut g, &task, c.device(1, 0), Strategy::SendRecv, &[]);
    }

    #[test]
    fn deps_gate_the_first_byte() {
        let c = cluster(2, 1);
        let task = multicast_task(&c, 10, 1, 1);
        let mut g = TaskGraph::new();
        let gate = g.add(Work::compute(c.device(0, 0), 5.0), []);
        let lowered = lower_unit_task(
            &mut g,
            &task,
            task.senders[0].0,
            Strategy::broadcast(),
            &[gate],
        );
        let t = Engine::new(&c).run(&g).unwrap();
        assert!(t.interval(lowered.done).finish >= 15.0 - 1e-6);
    }

    #[test]
    fn tiny_messages_do_not_over_chunk() {
        let c = cluster(2, 1);
        let task = multicast_task(&c, 3, 1, 1);
        let mut g = TaskGraph::new();
        lower_unit_task(
            &mut g,
            &task,
            task.senders[0].0,
            Strategy::Broadcast { chunks: 64 },
            &[],
        );
        // 3-byte slice: at most 3 chunks (plus the join marker).
        assert!(g.len() <= 4, "graph has {} tasks", g.len());
    }

    #[test]
    fn multi_rail_spray_uses_every_rail_nic() {
        // 2 hosts × 2 devices, 2 rails at 1 B/s each: spraying 40 bytes
        // drains both rails concurrently (~20 s) where the single-path
        // send/recv takes 40 s.
        use crossmesh_netsim::FabricModel;
        let c = cluster(2, 2).with_fabric(FabricModel::RailOptimized {
            rails: 2,
            spine_capacity: 1.0,
        });
        let task = multicast_task(&c, 40, 1, 1);
        let sr = run(&c, &task, Strategy::SendRecv);
        assert!((sr - 40.0).abs() < 1e-6, "got {sr}");
        let mut g = TaskGraph::new();
        let lowered = lower_unit_task_on(
            &mut g,
            &task,
            task.senders[0].0,
            Strategy::MultiRail {
                rails: 2,
                chunks: 8,
            },
            &[],
            Some(&c),
        );
        assert_eq!(lowered.receiver_done.len(), 1);
        let t = Engine::new(&c).run(&g).unwrap();
        let mr = t.interval(lowered.done).finish;
        assert!(mr < 22.0, "multi-rail should halve the transfer, got {mr}");
        assert!(mr >= 20.0 - 1e-6, "cannot beat the two-rail bound: {mr}");
    }

    #[test]
    fn multi_rail_spray_balances_rails_within_one_chunk() {
        let c = cluster(3, 4);
        // Skewed receiver set: 100 bytes to host 1, 30 to host 2.
        let task = UnitTask {
            index: 0,
            slice: Tile::new([0..130]),
            bytes: 130,
            senders: vec![(c.device(0, 0), HostId(0))],
            receivers: vec![
                Receiver {
                    device: c.device(1, 0),
                    host: HostId(1),
                    needed: Tile::new([0..100]),
                },
                Receiver {
                    device: c.device(2, 0),
                    host: HostId(2),
                    needed: Tile::new([100..130]),
                },
            ],
        };
        let spray = multi_rail_spray(&task, HostId(0), 4, 16);
        assert_eq!(spray.rail_bytes.len(), 4);
        let total: f64 = spray.rail_bytes.iter().sum();
        assert!((total - 130.0).abs() < 1e-9, "got {total}");
        let max = spray.rail_bytes.iter().cloned().fold(0.0, f64::max);
        let min = spray
            .rail_bytes
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(
            max - min <= spray.max_chunk_bytes + 1e-9,
            "rails {:?} diverge beyond one chunk ({})",
            spray.rail_bytes,
            spray.max_chunk_bytes
        );
        // Co-hosted receivers are excluded from the spray.
        let local = multi_rail_spray(&task, HostId(1), 4, 16);
        assert!((local.rail_bytes.iter().sum::<f64>() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn multi_rail_without_topology_degrades_to_chunked_direct_flows() {
        // No cluster given: no relays are known, chunks fly sender ->
        // receiver and share the one NIC like send/recv.
        let c = cluster(2, 2);
        let task = multicast_task(&c, 40, 1, 1);
        let d = run(
            &c,
            &task,
            Strategy::MultiRail {
                rails: 2,
                chunks: 8,
            },
        );
        assert!((d - 40.0).abs() < 1e-6, "got {d}");
    }

    #[test]
    fn multi_rail_copies_co_hosted_receivers_over_nvlink() {
        use crossmesh_netsim::FabricModel;
        let c = cluster(1, 4).with_fabric(FabricModel::RailOptimized {
            rails: 2,
            spine_capacity: 1.0,
        });
        let task = UnitTask {
            index: 0,
            slice: Tile::new([0..100]),
            bytes: 100,
            senders: vec![(c.device(0, 0), HostId(0))],
            receivers: (1..4)
                .map(|l| Receiver {
                    device: c.device(0, l),
                    host: HostId(0),
                    needed: Tile::new([0..100]),
                })
                .collect(),
        };
        let mut g = TaskGraph::new();
        let lowered = lower_unit_task_on(
            &mut g,
            &task,
            task.senders[0].0,
            Strategy::multi_rail(2),
            &[],
            Some(&c),
        );
        assert_eq!(lowered.receiver_done.len(), 3);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!(
            t.interval(lowered.done).finish < 4.0,
            "NVLink copies only, got {}",
            t.interval(lowered.done).finish
        );
    }
}
