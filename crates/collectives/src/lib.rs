//! Communication strategies for unit communication tasks.
//!
//! The paper's §3.1 analyses four ways to deliver one unique data slice
//! `DS_i` from a sender to its receiver set, in increasing order of
//! sophistication (with their idealised latencies for an `A`-host ×
//! `B`-device receiver set and a slice that takes `t` to cross one
//! inter-host link):
//!
//! | strategy | latency | implemented by |
//! |---|---|---|
//! | send/recv | `A·B·t` | [`Strategy::SendRecv`] |
//! | send/recv + local all-gather | `A·t` | [`Strategy::LocalAllGather`] |
//! | send/recv + global all-gather | `2·t` | [`Strategy::GlobalAllGather`] |
//! | chunked ring broadcast | `t·(1 + A/K)` | [`Strategy::Broadcast`] |
//! | multi-rail spray (RailS-style) | `t/R` per receiver | [`Strategy::MultiRail`] |
//!
//! The multi-rail family extends the paper's taxonomy toward MoE
//! all-to-all traffic on rail-optimized fabrics: chunks are sprayed over
//! the host's `R` rail NICs by residual capacity, relayed over NVLink to
//! reach each rail (see [`lower_unit_task_on`], which takes the cluster
//! topology the relays are drawn from).
//!
//! [`lower_unit_task`] turns a [`UnitTask`](crossmesh_mesh::UnitTask) plus a
//! chosen strategy and sender into a [`TaskGraph`](crossmesh_netsim::TaskGraph)
//! fragment executable on the simulator; [`estimate_unit_task`] provides the
//! matching closed-form estimates used by the planner in `crossmesh-core`.
//!
//! Standalone ring collectives ([`ring_all_gather`], [`ring_all_reduce`],
//! [`all_to_all`]) are also exposed; they model the intra-mesh collective
//! communication of intra-operator parallelism.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost_model;
mod intra;
mod lower;
mod ring;
mod strategy;

pub use cost_model::{estimate_unit_task, CostParams};
pub use intra::lower_intra_mesh_resharding;
pub use lower::{
    lower_unit_task, lower_unit_task_on, multi_rail_spray, LoweredComm, MultiRailSpray,
};
pub use ring::{all_to_all, ring_all_gather, ring_all_reduce, RingResult};
pub use strategy::{alpa_effective_strategy, Strategy};
