//! Ring collectives lowered onto the simulator.

use crossmesh_netsim::{DeviceId, TaskGraph, TaskId, Work};

/// The completion handles of a ring collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingResult {
    /// One task id per participant, completing when that participant holds
    /// its full result.
    pub done_per_device: Vec<TaskId>,
    /// Joins all participants.
    pub done: TaskId,
}

/// Lowers a ring all-gather over `participants` into `graph`.
///
/// Participant `i` initially holds part `i` of `part_bytes[i]` bytes, ready
/// once the tasks in `part_ready[i]` complete; after `N−1` steps every
/// participant holds all parts. Step `s` has participant `i` forwarding the
/// part it received in step `s−1` to participant `(i+1) mod N`.
///
/// # Example
///
/// ```
/// use crossmesh_collectives::ring_all_gather;
/// use crossmesh_netsim::{ClusterSpec, Engine, LinkParams, TaskGraph};
///
/// # fn main() -> Result<(), crossmesh_netsim::SimError> {
/// let cluster = ClusterSpec::homogeneous(1, 4, LinkParams::new(100e9, 1.25e9));
/// let devices: Vec<_> = (0..4).map(|i| cluster.device(0, i)).collect();
/// let mut graph = TaskGraph::new();
/// let result = ring_all_gather(&mut graph, &devices, &[2.5e8; 4], &vec![vec![]; 4]);
/// let trace = Engine::new(&cluster).run(&graph)?;
/// // (N-1)/N of 1 GB over 100 GB/s NVLink: ~7.5 ms.
/// assert!(trace.interval(result.done).finish < 0.01);
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if the three slices have different lengths or are empty, or if a
/// participant repeats.
pub fn ring_all_gather(
    graph: &mut TaskGraph,
    participants: &[DeviceId],
    part_bytes: &[f64],
    part_ready: &[Vec<TaskId>],
) -> RingResult {
    let n = participants.len();
    assert!(n > 0, "ring needs at least one participant");
    assert_eq!(part_bytes.len(), n, "one part size per participant");
    assert_eq!(part_ready.len(), n, "one ready set per participant");
    {
        let mut sorted = participants.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "ring participants must be distinct");
    }

    if n == 1 {
        let done = graph.add(Work::Marker, part_ready[0].iter().copied());
        return RingResult {
            done_per_device: vec![done],
            done,
        };
    }

    // prev_step[i]: the flow participant i sent in the previous step (the
    // part it will have just forwarded); recv_of[i]: everything i received.
    let mut prev_step: Vec<TaskId> = Vec::new();
    let mut received: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for s in 0..n - 1 {
        let mut this_step = Vec::with_capacity(n);
        for i in 0..n {
            let next = (i + 1) % n;
            // The part i sends at step s is part (i - s) mod n.
            let part = (i + n - s % n) % n;
            let mut deps: Vec<TaskId> = Vec::new();
            if s == 0 {
                deps.extend(part_ready[i].iter().copied());
            } else {
                // It received this part from its predecessor last step...
                let pred = (i + n - 1) % n;
                deps.push(prev_step[pred]);
                // ...and lockstep with its own previous send.
                deps.push(prev_step[i]);
            }
            let flow = graph.add_labeled(
                Work::flow(participants[i], participants[next], part_bytes[part]),
                deps,
                Some(format!(
                    "ag[s{s}] {}->{}",
                    participants[i], participants[next]
                )),
            );
            received[next].push(flow);
            this_step.push(flow);
        }
        prev_step = this_step;
    }

    let done_per_device: Vec<TaskId> = (0..n)
        .map(|i| {
            let deps = received[i]
                .iter()
                .copied()
                .chain(part_ready[i].iter().copied());
            graph.add(Work::Marker, deps)
        })
        .collect();
    let done = graph.add(Work::Marker, done_per_device.iter().copied());
    RingResult {
        done_per_device,
        done,
    }
}

/// Lowers a ring all-reduce of `total_bytes` over `participants`:
/// a reduce-scatter followed by an all-gather, `2(N−1)` steps of
/// `total_bytes / N` each.
///
/// # Panics
///
/// Panics if `participants` is empty or repeats, or if `ready` length
/// differs from the participant count.
pub fn ring_all_reduce(
    graph: &mut TaskGraph,
    participants: &[DeviceId],
    total_bytes: f64,
    ready: &[Vec<TaskId>],
) -> RingResult {
    let n = participants.len();
    assert!(n > 0, "ring needs at least one participant");
    assert_eq!(ready.len(), n, "one ready set per participant");
    if n == 1 {
        let done = graph.add(Work::Marker, ready[0].iter().copied());
        return RingResult {
            done_per_device: vec![done],
            done,
        };
    }
    let chunk = total_bytes / n as f64;
    // Reduce-scatter: N-1 rounds of neighbour exchanges.
    let mut prev: Vec<TaskId> = Vec::new();
    for s in 0..n - 1 {
        let mut this = Vec::with_capacity(n);
        for i in 0..n {
            let next = (i + 1) % n;
            let mut deps: Vec<TaskId> = Vec::new();
            if s == 0 {
                deps.extend(ready[i].iter().copied());
            } else {
                let pred = (i + n - 1) % n;
                deps.push(prev[pred]);
                deps.push(prev[i]);
            }
            this.push(graph.add_labeled(
                Work::flow(participants[i], participants[next], chunk),
                deps,
                Some(format!("rs[s{s}]")),
            ));
        }
        prev = this;
    }
    // All-gather phase on the reduced chunks.
    let part_ready: Vec<Vec<TaskId>> = (0..n)
        .map(|i| vec![prev[(i + n - 1) % n], prev[i]])
        .collect();
    ring_all_gather(graph, participants, &vec![chunk; n], &part_ready)
}

/// Lowers an all-to-all: participant `i` sends `bytes[i][j]` to participant
/// `j` for every `i ≠ j`, all flows concurrent.
///
/// # Panics
///
/// Panics if `bytes` is not square with the participant count, or if
/// `ready` length differs.
pub fn all_to_all(
    graph: &mut TaskGraph,
    participants: &[DeviceId],
    bytes: &[Vec<f64>],
    ready: &[Vec<TaskId>],
) -> RingResult {
    let n = participants.len();
    assert!(n > 0, "all-to-all needs at least one participant");
    assert_eq!(bytes.len(), n, "bytes matrix must be n x n");
    assert_eq!(ready.len(), n, "one ready set per participant");
    let mut received: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for i in 0..n {
        assert_eq!(bytes[i].len(), n, "bytes matrix must be n x n");
        for j in 0..n {
            if i == j || bytes[i][j] <= 0.0 {
                continue;
            }
            let f = graph.add(
                Work::flow(participants[i], participants[j], bytes[i][j]),
                ready[i].iter().copied(),
            );
            received[j].push(f);
        }
    }
    let done_per_device: Vec<TaskId> = (0..n)
        .map(|i| {
            let deps = received[i].iter().copied().chain(ready[i].iter().copied());
            graph.add(Work::Marker, deps)
        })
        .collect();
    let done = graph.add(Work::Marker, done_per_device.iter().copied());
    RingResult {
        done_per_device,
        done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_netsim::{ClusterSpec, Engine, LinkParams};

    fn links(intra: f64, inter: f64) -> LinkParams {
        LinkParams::new(intra, inter).with_latencies(0.0, 0.0)
    }

    #[test]
    fn intra_host_all_gather_takes_n_minus_1_steps() {
        // 4 devices on one host, parts of 1 byte, 10 B/s NVLink:
        // 3 steps x (1/10)s = 0.3 s.
        let c = ClusterSpec::homogeneous(1, 4, links(10.0, 1.0));
        let mut g = TaskGraph::new();
        let devs: Vec<_> = (0..4).map(|i| c.device(0, i)).collect();
        let r = ring_all_gather(&mut g, &devs, &[1.0; 4], &vec![vec![]; 4]);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.interval(r.done).finish - 0.3).abs() < 1e-9);
    }

    #[test]
    fn cross_host_all_gather_is_nic_bound() {
        // 2 hosts x 1 device: 1 step, each device sends its part across.
        let c = ClusterSpec::homogeneous(2, 1, links(10.0, 1.0));
        let mut g = TaskGraph::new();
        let devs = vec![c.device(0, 0), c.device(1, 0)];
        let r = ring_all_gather(&mut g, &devs, &[2.0, 2.0], &vec![vec![]; 2]);
        let t = Engine::new(&c).run(&g).unwrap();
        // Both directions concurrent (full duplex): 2 bytes at 1 B/s.
        assert!((t.interval(r.done).finish - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_participant_is_instant() {
        let c = ClusterSpec::homogeneous(1, 1, links(10.0, 1.0));
        let mut g = TaskGraph::new();
        let r = ring_all_gather(&mut g, &[c.device(0, 0)], &[5.0], &[vec![]]);
        let t = Engine::new(&c).run(&g).unwrap();
        assert_eq!(t.interval(r.done).finish, 0.0);
    }

    #[test]
    fn all_gather_total_time_approaches_bandwidth_bound() {
        // Ring all-gather of D bytes over n intra-host devices moves
        // (n-1)/n * D per device: time = (n-1)/n * D / bw.
        let c = ClusterSpec::homogeneous(1, 8, links(100.0, 1.0));
        let mut g = TaskGraph::new();
        let devs: Vec<_> = (0..8).map(|i| c.device(0, i)).collect();
        let d_total = 80.0;
        let part = d_total / 8.0;
        let r = ring_all_gather(&mut g, &devs, &[part; 8], &vec![vec![]; 8]);
        let t = Engine::new(&c).run(&g).unwrap();
        let expect = (7.0 / 8.0) * d_total / 100.0;
        assert!((t.interval(r.done).finish - expect).abs() < 1e-9);
    }

    #[test]
    fn all_reduce_takes_two_phases() {
        // 4 intra-host devices, 8 bytes total: 2*(4-1)=6 steps of 2 bytes
        // at 10 B/s = 1.2 s.
        let c = ClusterSpec::homogeneous(1, 4, links(10.0, 1.0));
        let mut g = TaskGraph::new();
        let devs: Vec<_> = (0..4).map(|i| c.device(0, i)).collect();
        let r = ring_all_reduce(&mut g, &devs, 8.0, &vec![vec![]; 4]);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!((t.interval(r.done).finish - 1.2).abs() < 1e-9);
    }

    #[test]
    fn all_to_all_runs_concurrently() {
        let c = ClusterSpec::homogeneous(1, 3, links(10.0, 1.0));
        let mut g = TaskGraph::new();
        let devs: Vec<_> = (0..3).map(|i| c.device(0, i)).collect();
        let bytes = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let r = all_to_all(&mut g, &devs, &bytes, &vec![vec![]; 3]);
        let t = Engine::new(&c).run(&g).unwrap();
        // Each device sends 2 bytes at 10 B/s over NVLink concurrently.
        assert!((t.interval(r.done).finish - 0.2).abs() < 1e-9);
    }

    #[test]
    fn ready_dependencies_delay_the_ring() {
        let c = ClusterSpec::homogeneous(1, 2, links(10.0, 1.0));
        let mut g = TaskGraph::new();
        let devs = vec![c.device(0, 0), c.device(0, 1)];
        let gate = g.add(Work::compute(devs[0], 1.0), []);
        let r = ring_all_gather(&mut g, &devs, &[1.0, 1.0], &[vec![gate], vec![]]);
        let t = Engine::new(&c).run(&g).unwrap();
        assert!(t.interval(r.done).finish >= 1.0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_participants_panic() {
        let c = ClusterSpec::homogeneous(1, 2, links(10.0, 1.0));
        let mut g = TaskGraph::new();
        let d = c.device(0, 0);
        ring_all_gather(&mut g, &[d, d], &[1.0, 1.0], &vec![vec![]; 2]);
    }
}
