//! The strategy taxonomy of §3.1.

use crossmesh_mesh::UnitTask;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default number of chunks for the pipelined ring broadcast. The paper
/// uses `K ≈ 100`; the overhead term is `A/K` so anything ≫ the host count
/// is near-optimal.
pub const DEFAULT_BROADCAST_CHUNKS: u32 = 64;

/// How a single unit communication task is carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// The chosen sender P2Ps each receiver exactly the sub-tile it needs.
    /// Latency grows with the number of receiving *devices* (`A·B·t`).
    SendRecv,
    /// Each receiver host gets one copy of the slice, scattered over its
    /// receiver devices, which then re-assemble it with an intra-host ring
    /// all-gather. Latency grows with the number of receiving *hosts*
    /// (`A·t`). This is the Megatron-LM-style offload.
    LocalAllGather,
    /// The slice is scattered over *all* receiver devices, which then run a
    /// global ring all-gather (crossing hosts). Idealised latency `2·t`.
    /// This is the Alpa baseline in the paper's benchmarks.
    GlobalAllGather,
    /// Pipelined ring broadcast: the slice is cut into `chunks` pieces that
    /// stream along a ring from the sender through every receiver, hosts
    /// visited consecutively. Latency `t·(1 + A/K)` — optimal as `K` grows.
    Broadcast {
        /// Number of pipeline chunks (`K`).
        chunks: u32,
    },
    /// RailS-style multi-rail spray for rail-optimized fabrics: the sender
    /// splits the slice into `chunks` pieces and sprays them across the
    /// host's `rails` NICs, relaying each chunk over NVLink to the
    /// co-hosted device on the target rail, crossing on that rail, and
    /// relaying again to the receiver. All rails drain in parallel, so the
    /// inter-host term shrinks to `t/rails` — the per-sender load balancing
    /// that makes skewed MoE all-to-alls rail-limited instead of
    /// NIC-limited. Chunks are assigned to rails by greatest residual
    /// capacity (equivalently, least accumulated bytes; ties to the lowest
    /// rail), so skewed chunk tails still balance.
    MultiRail {
        /// Number of rail planes sprayed over.
        rails: u32,
        /// Number of spray chunks (≥ `rails` for full utilization).
        chunks: u32,
    },
    /// Pipelined *binary-tree* broadcast over receiver hosts: lower hop
    /// depth (`log₂ A`) but each inner node sends every chunk twice, so
    /// the bandwidth term doubles (`≈ 2t` for large messages). The classic
    /// latency-optimized alternative from the collectives literature; the
    /// paper's bandwidth-bound regime favours the ring, which this
    /// strategy exists to demonstrate.
    TreeBroadcast {
        /// Number of pipeline chunks (`K`).
        chunks: u32,
    },
}

impl Strategy {
    /// The paper's broadcast strategy with the default chunk count.
    pub fn broadcast() -> Self {
        Strategy::Broadcast {
            chunks: DEFAULT_BROADCAST_CHUNKS,
        }
    }

    /// A multi-rail spray over `rails` rails with one chunk wave per rail
    /// by default (4 chunks per rail).
    pub fn multi_rail(rails: u32) -> Self {
        Strategy::MultiRail {
            rails,
            chunks: rails.max(1) * 4,
        }
    }

    /// A short identifier used in labels and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::SendRecv => "send_recv",
            Strategy::LocalAllGather => "local_allgather",
            Strategy::GlobalAllGather => "global_allgather",
            Strategy::Broadcast { .. } => "broadcast",
            Strategy::MultiRail { .. } => "multi_rail",
            Strategy::TreeBroadcast { .. } => "tree_broadcast",
        }
    }
}

impl Default for Strategy {
    fn default() -> Self {
        Strategy::broadcast()
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Broadcast { chunks } => write!(f, "broadcast(K={chunks})"),
            Strategy::MultiRail { rails, chunks } => {
                write!(f, "multi_rail(rails={rails}, K={chunks})")
            }
            Strategy::TreeBroadcast { chunks } => write!(f, "tree_broadcast(K={chunks})"),
            other => f.write_str(other.label()),
        }
    }
}

/// The strategy the Alpa baseline would effectively use for `task`.
///
/// Alpa's all-gather path requires the slice to split evenly over the
/// receiver devices; on uneven partitions it falls back to plain
/// send/recv. The paper's Figure 5 shows this as the sudden slowdown at 3
/// GPUs / 3 nodes.
pub fn alpa_effective_strategy(task: &UnitTask) -> Strategy {
    let n = task.receivers.len() as u64;
    if n > 1 && task.slice.volume().is_multiple_of(n) {
        Strategy::GlobalAllGather
    } else {
        // Single receiver, or an uneven partition Alpa cannot all-gather.
        Strategy::SendRecv
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;
    use crossmesh_mesh::Tile;
    use crossmesh_mesh::{Receiver, UnitTask};
    use crossmesh_netsim::{DeviceId, HostId};

    fn task(volume: u64, receivers: usize) -> UnitTask {
        UnitTask {
            index: 0,
            slice: Tile::new([0..volume]),
            bytes: volume,
            senders: vec![(DeviceId(0), HostId(0))],
            receivers: (0..receivers)
                .map(|i| Receiver {
                    device: DeviceId(10 + i as u32),
                    host: HostId(1),
                    needed: Tile::new([0..volume]),
                })
                .collect(),
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Strategy::SendRecv.to_string(), "send_recv");
        assert_eq!(Strategy::broadcast().to_string(), "broadcast(K=64)");
        assert_eq!(Strategy::default(), Strategy::broadcast());
        assert_eq!(
            Strategy::multi_rail(4).to_string(),
            "multi_rail(rails=4, K=16)"
        );
        assert_eq!(Strategy::multi_rail(4).label(), "multi_rail");
    }

    #[test]
    fn alpa_uses_allgather_on_even_partitions() {
        assert_eq!(
            alpa_effective_strategy(&task(12, 4)),
            Strategy::GlobalAllGather
        );
    }

    #[test]
    fn alpa_falls_back_on_uneven_partitions() {
        assert_eq!(alpa_effective_strategy(&task(10, 3)), Strategy::SendRecv);
    }

    #[test]
    fn alpa_single_receiver_is_p2p() {
        assert_eq!(alpa_effective_strategy(&task(10, 1)), Strategy::SendRecv);
    }
}
