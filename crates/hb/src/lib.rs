//! Happens-before instrumentation seam for the concurrent core.
//!
//! The vendored sync shims (`shims/parking_lot`, `shims/rayon`), the
//! runtime's channels, and the declared shared-state access points call
//! into this crate at every synchronization operation. Two independently
//! armable behaviors hang off those call sites:
//!
//! - **Event emission** ([`install`]): each acquire/release/read/write is
//!   forwarded to a process-global [`Sink`] — in practice the
//!   FastTrack-style vector-clock engine in `crossmesh-check`'s
//!   `race` module, which convicts unordered conflicting accesses.
//! - **Schedule perturbation** ([`fuzz`]): each call site doubles as a
//!   preemption point where a per-thread seeded RNG injects yields and
//!   microsleeps, deterministically (per seed) perturbing thread
//!   interleavings so equivalence oracles can be re-run across a seed
//!   sweep.
//!
//! Both are off by default and the disarmed fast path is a single relaxed
//! atomic load per site — the same discipline `crossmesh-obs` uses for
//! its collector facade. This crate is dependency-free so the shims can
//! use it without cycles; the analysis lives upstream in
//! `crossmesh-check`.
//!
//! Sinks must only use `std::sync` primitives internally: a sink that
//! acquired an instrumented lock would re-enter the seam from inside
//! itself.

use std::cell::Cell;
use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Bit in [`state`]: events flow to the installed [`Sink`].
const ARMED_BIT: u8 = 1;
/// Bit in [`state`]: call sites perturb the schedule.
const FUZZ_BIT: u8 = 2;

/// The one word every instrumented site loads on its fast path.
static STATE: AtomicU8 = AtomicU8::new(0);

/// True when a sink is installed and events are being emitted.
#[inline]
pub fn armed() -> bool {
    STATE.load(Ordering::Relaxed) & ARMED_BIT != 0
}

/// True when either arming bit is set; instrumented sites that need to do
/// per-call setup (e.g. allocate edge ids) key off this.
#[inline]
pub fn engaged() -> bool {
    STATE.load(Ordering::Relaxed) != 0
}

/// A source location captured at an instrumented call site via
/// `#[track_caller]`, so lock events carry the *user* call site, not the
/// shim's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Site {
    /// Source file, as `file!()` would render it at the call site.
    pub file: &'static str,
    /// 1-based source line.
    pub line: u32,
}

impl Site {
    /// The caller's location (propagated through `#[track_caller]`
    /// frames).
    #[track_caller]
    pub fn caller() -> Site {
        let loc = Location::caller();
        Site {
            file: loc.file(),
            line: loc.line(),
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// The four synchronization/access event kinds the seam distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The thread synchronized *from* `object` (lock acquired, message
    /// received, job started, join completed).
    Acquire,
    /// The thread synchronized *into* `object` (lock released, message
    /// sent, job spawned, job finished).
    Release,
    /// The thread read the shared state declared as access point
    /// `object`.
    Read,
    /// The thread wrote the shared state declared as access point
    /// `object`.
    Write,
}

/// One synchronization or shared-access event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Stable per-OS-thread id (dense, assigned on first event).
    pub thread: u32,
    /// The synchronization object or access point. Address-derived ids
    /// (`&thing as *const _ as usize as u64`) and [`fresh_id`] values
    /// never collide: fresh ids have the top bit set, userspace pointers
    /// do not.
    pub object: u64,
    /// Where in the source the event was emitted.
    pub site: Site,
}

/// Receives every event while armed. See the module docs for the
/// no-instrumented-locks rule.
pub trait Sink: Send + Sync {
    /// Called once per event, from the emitting thread.
    fn event(&self, ev: Event);
}

fn sink_slot() -> &'static Mutex<Option<Arc<dyn Sink>>> {
    static SINK: OnceLock<Mutex<Option<Arc<dyn Sink>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: Cell<u32> = const { Cell::new(u32::MAX) };
    /// (seed this state was derived from, xorshift state) for the
    /// perturbation RNG; re-derived whenever the global seed changes.
    static FUZZ_RNG: Cell<(u64, u64)> = const { Cell::new((u64::MAX, 0)) };
}

/// This thread's dense id, assigned on first use.
pub fn thread_id() -> u32 {
    THREAD_ID.with(|c| {
        let id = c.get();
        if id != u32::MAX {
            return id;
        }
        let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) as u32;
        c.set(id);
        id
    })
}

/// Fresh ids start above the pointer range (top bit set) so
/// address-derived object ids can never alias them.
static NEXT_OBJECT: AtomicU64 = AtomicU64::new(1 << 63);

/// A new, never-before-used synchronization object id — for per-message
/// and per-job edges where no stable address exists.
pub fn fresh_id() -> u64 {
    NEXT_OBJECT.fetch_add(1, Ordering::Relaxed)
}

/// Reserves a contiguous block of `n` fresh ids, returning the first —
/// for indexed families (per-channel, per-task) allocated in one shot.
pub fn fresh_ids(n: u64) -> u64 {
    NEXT_OBJECT.fetch_add(n.max(1), Ordering::Relaxed)
}

/// An object id derived from a value's address: stable for the value's
/// lifetime, distinct across live values.
pub fn object_id<T: ?Sized>(value: &T) -> u64 {
    value as *const T as *const () as usize as u64
}

/// The seed the perturbation RNGs derive from; only read when
/// [`FUZZ_BIT`] is set.
static FUZZ_SEED: AtomicU64 = AtomicU64::new(0);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Emits `kind` for `object` if armed, perturbing first if fuzzing. The
/// cold continuation of the four inline entry points.
#[cold]
fn engage(state: u8, kind: EventKind, object: u64, site: Site) {
    if state & FUZZ_BIT != 0 {
        perturb_slow();
    }
    if state & ARMED_BIT != 0 {
        let sink = sink_slot()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        if let Some(sink) = sink {
            sink.event(Event {
                kind,
                thread: thread_id(),
                object,
                site,
            });
        }
    }
}

/// Record that the calling thread synchronized *from* `object`.
#[inline]
#[track_caller]
pub fn acquire(object: u64) {
    let state = STATE.load(Ordering::Relaxed);
    if state != 0 {
        engage(state, EventKind::Acquire, object, Site::caller());
    }
}

/// Record that the calling thread synchronized *into* `object`.
#[inline]
#[track_caller]
pub fn release(object: u64) {
    let state = STATE.load(Ordering::Relaxed);
    if state != 0 {
        engage(state, EventKind::Release, object, Site::caller());
    }
}

/// Record a read of the shared state declared as access point `object`.
#[inline]
#[track_caller]
pub fn read(object: u64) {
    let state = STATE.load(Ordering::Relaxed);
    if state != 0 {
        engage(state, EventKind::Read, object, Site::caller());
    }
}

/// Record a write of the shared state declared as access point `object`.
#[inline]
#[track_caller]
pub fn write(object: u64) {
    let state = STATE.load(Ordering::Relaxed);
    if state != 0 {
        engage(state, EventKind::Write, object, Site::caller());
    }
}

/// A bare preemption point with no associated event: perturbs the
/// schedule when fuzzing, otherwise one relaxed load.
#[inline]
pub fn preempt() {
    let state = STATE.load(Ordering::Relaxed);
    if state & FUZZ_BIT != 0 {
        perturb_slow();
    }
}

#[cold]
fn perturb_slow() {
    let seed = FUZZ_SEED.load(Ordering::Relaxed);
    let roll = FUZZ_RNG.with(|c| {
        let (derived_from, mut state) = c.get();
        if derived_from != seed || state == 0 {
            state =
                splitmix64(seed ^ u64::from(thread_id()).wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
        }
        // xorshift64: cheap, full-period, deterministic per (seed, thread).
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        c.set((seed, state));
        state
    });
    // Mostly run through; sometimes yield; rarely stall long enough for
    // another thread to overtake. The distribution is what varies the
    // interleaving — determinism comes from the per-(seed, thread) RNG.
    match roll % 16 {
        0..=3 => std::thread::yield_now(),
        4 => std::thread::sleep(Duration::from_micros(roll % 20 + 1)),
        _ => {}
    }
}

/// Restores the seam state it displaced when dropped, so armed sections
/// nest and tests cannot leak arming into each other.
pub struct Guard {
    prev_state: u8,
    prev_sink: Option<Arc<dyn Sink>>,
    prev_seed: u64,
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard")
            .field("prev_state", &self.prev_state)
            .finish()
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        let mut slot = sink_slot()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = self.prev_sink.take();
        FUZZ_SEED.store(self.prev_seed, Ordering::Relaxed);
        STATE.store(self.prev_state, Ordering::Relaxed);
    }
}

fn snapshot() -> Guard {
    let prev_sink = sink_slot()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .clone();
    Guard {
        prev_state: STATE.load(Ordering::Relaxed),
        prev_sink,
        prev_seed: FUZZ_SEED.load(Ordering::Relaxed),
    }
}

/// Installs `sink` and arms event emission until the guard drops.
///
/// Concurrent armed sections in one process share the global seam; tests
/// must serialize through [`test_lock`].
#[must_use]
pub fn install(sink: Arc<dyn Sink>) -> Guard {
    let guard = snapshot();
    *sink_slot()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(sink);
    STATE.store(guard.prev_state | ARMED_BIT, Ordering::Relaxed);
    guard
}

/// Arms schedule perturbation with `seed` until the guard drops.
/// Composes with [`install`]: arm both to race-check perturbed
/// schedules.
#[must_use]
pub fn fuzz(seed: u64) -> Guard {
    let guard = snapshot();
    FUZZ_SEED.store(seed, Ordering::Relaxed);
    STATE.store(guard.prev_state | FUZZ_BIT, Ordering::Relaxed);
    guard
}

/// Serializes armed sections across tests sharing a process: the seam is
/// process-global, so two concurrently armed tests would see each
/// other's events.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    #[derive(Default)]
    struct Recorder {
        events: StdMutex<Vec<Event>>,
    }

    impl Sink for Recorder {
        fn event(&self, ev: Event) {
            self.events.lock().unwrap().push(ev);
        }
    }

    #[test]
    fn disarmed_emits_nothing() {
        let _serial = test_lock();
        assert!(!armed());
        acquire(1);
        release(1);
        read(2);
        write(2);
        preempt();
        // Nothing to observe without a sink; the assertion is that the
        // calls are no-ops that do not panic or allocate state.
        assert!(!engaged());
    }

    #[test]
    fn armed_events_reach_the_sink_and_disarm_on_drop() {
        let _serial = test_lock();
        let rec = Arc::new(Recorder::default());
        {
            let _armed = install(rec.clone());
            assert!(armed());
            acquire(7);
            write(9);
        }
        assert!(!armed());
        release(7); // after disarm: must not land
        let events = rec.events.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Acquire);
        assert_eq!(events[0].object, 7);
        assert_eq!(events[1].kind, EventKind::Write);
        assert_eq!(events[1].object, 9);
        assert_eq!(events[0].thread, events[1].thread);
        assert!(events[0].site.file.ends_with("lib.rs"));
    }

    #[test]
    fn fresh_ids_are_distinct_and_disjoint_from_addresses() {
        let a = fresh_id();
        let b = fresh_id();
        assert_ne!(a, b);
        assert!(a & (1 << 63) != 0);
        let value = 42u64;
        assert!(object_id(&value) & (1 << 63) == 0);
    }

    #[test]
    fn fuzz_guard_restores_state() {
        let _serial = test_lock();
        {
            let _fuzzing = fuzz(3);
            assert!(engaged());
            assert!(!armed());
            for _ in 0..64 {
                preempt();
            }
        }
        assert!(!engaged());
    }

    #[test]
    fn guards_nest() {
        let _serial = test_lock();
        let rec = Arc::new(Recorder::default());
        let outer = install(rec.clone());
        {
            let _inner = fuzz(1);
            assert!(armed());
            assert!(engaged());
            acquire(5);
        }
        assert!(armed());
        drop(outer);
        assert!(!armed());
        assert_eq!(rec.events.lock().unwrap().len(), 1);
    }
}
