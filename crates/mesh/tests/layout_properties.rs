//! Property-based tests of tiles, layouts, and both unit-task
//! granularities.

use crossmesh_mesh::{
    unit_tasks_with, DeviceMesh, DimSharding, Granularity, Layout, ShardingSpec, Tile,
};
use crossmesh_netsim::{ClusterSpec, LinkParams};
use proptest::prelude::*;

fn spec_strategy(rank: usize) -> impl Strategy<Value = ShardingSpec> {
    (
        prop::option::of(0..rank),
        prop::option::of(0..rank),
        any::<bool>(),
    )
        .prop_map(move |(a0, a1, swap)| {
            let mut dims = vec![DimSharding::Replicated; rank];
            match (a0, a1) {
                (Some(d0), Some(d1)) if d0 == d1 => {
                    dims[d0] = DimSharding::Sharded(if swap { vec![0, 1] } else { vec![1, 0] });
                }
                (a0, a1) => {
                    if let Some(d) = a0 {
                        dims[d] = DimSharding::Sharded(vec![0]);
                    }
                    if let Some(d) = a1 {
                        dims[d] = DimSharding::Sharded(vec![1]);
                    }
                }
            }
            ShardingSpec::new(dims).expect("valid by construction")
        })
}

fn tile_strategy() -> impl Strategy<Value = Tile> {
    prop::collection::vec((0u64..10, 0u64..10), 1..4)
        .prop_map(|bounds| Tile::new(bounds.into_iter().map(|(a, b)| a.min(b)..a.max(b))))
}

fn mesh(cluster: &ClusterSpec, offset: usize, shape: (usize, usize)) -> DeviceMesh {
    DeviceMesh::from_cluster(cluster, offset, shape, "m").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tile intersection is commutative and contained in both operands.
    #[test]
    fn tile_intersection_algebra(a in tile_strategy(), b in tile_strategy()) {
        prop_assume!(a.rank() == b.rank());
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(&ab, &ba);
        if let Some(i) = ab {
            prop_assert!(a.contains(&i) && b.contains(&i));
            prop_assert!(i.volume() <= a.volume().min(b.volume()));
        }
    }

    /// `contains` is reflexive and consistent with intersection.
    #[test]
    fn tile_containment(a in tile_strategy(), b in tile_strategy()) {
        prop_assume!(a.rank() == b.rank());
        prop_assert!(a.contains(&a));
        if !b.is_empty() && a.contains(&b) {
            prop_assert_eq!(a.intersect(&b), Some(b));
        }
    }

    /// Every device's tile is inside the tensor, and per-coordinate tiles
    /// agree with the unique-slice grouping.
    #[test]
    fn layout_tiles_are_consistent(
        spec in spec_strategy(2),
        shape in prop::collection::vec(1u64..16, 2),
        m1 in 1usize..=3,
        m2 in 1usize..=4,
    ) {
        let cluster = ClusterSpec::homogeneous(3, 4, LinkParams::new(1.0, 1.0));
        let mesh = mesh(&cluster, 0, (m1, m2));
        let layout = Layout::new(&mesh, &spec, &shape).unwrap();
        let full = Tile::full(&shape);
        for coord in mesh.coords() {
            prop_assert!(full.contains(layout.tile_at(coord)));
        }
        let from_groups: usize = layout.unique_slices().iter().map(|(_, c)| c.len()).sum();
        let non_empty = mesh.coords().filter(|&c| !layout.tile_at(c).is_empty()).count();
        prop_assert_eq!(from_groups, non_empty);
    }

    /// Both granularities conserve bytes, and tile granularity refines the
    /// source-slice granularity (same or more unit tasks, same coverage).
    #[test]
    fn granularities_agree_on_coverage(
        src_spec in spec_strategy(2),
        dst_spec in spec_strategy(2),
        shape in prop::collection::vec(1u64..16, 2),
    ) {
        let cluster = ClusterSpec::homogeneous(4, 4, LinkParams::new(1.0, 1.0));
        let src = mesh(&cluster, 0, (2, 4));
        let dst = mesh(&cluster, 2, (2, 4));
        let coarse = unit_tasks_with(
            &src, &src_spec, &dst, &dst_spec, &shape, 1, Granularity::SourceSlice,
        ).unwrap();
        let fine = unit_tasks_with(
            &src, &src_spec, &dst, &dst_spec, &shape, 1, Granularity::Tile,
        ).unwrap();
        let volume: u64 = shape.iter().product();
        prop_assert_eq!(coarse.iter().map(|u| u.bytes).sum::<u64>(), volume);
        prop_assert_eq!(fine.iter().map(|u| u.bytes).sum::<u64>(), volume);
        prop_assert!(fine.len() >= coarse.len());
        // Per-receiver needed volumes agree between granularities.
        let needed = |tasks: &[crossmesh_mesh::UnitTask]| -> std::collections::BTreeMap<_, u64> {
            let mut m = std::collections::BTreeMap::new();
            for t in tasks {
                for r in &t.receivers {
                    *m.entry(r.device).or_insert(0) += r.needed.volume();
                }
            }
            m
        };
        prop_assert_eq!(needed(&coarse), needed(&fine));
    }

    /// Sender replica sets are never empty and all senders hold the slice.
    #[test]
    fn unit_tasks_have_valid_senders(
        src_spec in spec_strategy(3),
        dst_spec in spec_strategy(3),
        shape in prop::collection::vec(1u64..10, 3),
    ) {
        let cluster = ClusterSpec::homogeneous(4, 4, LinkParams::new(1.0, 1.0));
        let src = mesh(&cluster, 0, (2, 4));
        let dst = mesh(&cluster, 2, (2, 4));
        let src_layout = Layout::new(&src, &src_spec, &shape).unwrap();
        let tasks = unit_tasks_with(
            &src, &src_spec, &dst, &dst_spec, &shape, 1, Granularity::Tile,
        ).unwrap();
        for t in &tasks {
            prop_assert!(!t.senders.is_empty());
            prop_assert!(!t.receivers.is_empty());
            for &(dev, _) in &t.senders {
                // The sender's layout tile must contain the slice.
                let coord = src.coords().find(|&c| src.device(c) == dev).unwrap();
                prop_assert!(src_layout.tile_at(coord).contains(&t.slice));
            }
        }
    }
}
