//! Hyper-rectangular index ranges of a tensor.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// A hyper-rectangular region of an N-dimensional tensor: one half-open
/// index range per dimension.
///
/// Tiles are the unit of data in this workspace: a device's share of a
/// distributed tensor is a tile, and a unit communication task moves a tile.
///
/// # Example
///
/// ```
/// use crossmesh_mesh::Tile;
///
/// let mine = Tile::new([0..4, 0..8]);
/// let wanted = Tile::new([2..6, 4..8]);
/// let overlap = mine.intersect(&wanted).expect("they overlap");
/// assert_eq!(overlap, Tile::new([2..4, 4..8]));
/// assert_eq!(overlap.volume(), 8);
/// assert!(mine.contains(&overlap));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tile {
    /// `(start, end)` per dimension; half-open.
    bounds: Vec<(u64, u64)>,
}

impl Tile {
    /// Builds a tile from per-dimension ranges.
    ///
    /// # Panics
    ///
    /// Panics if any range has `start > end`.
    pub fn new(bounds: impl IntoIterator<Item = Range<u64>>) -> Self {
        let bounds: Vec<(u64, u64)> = bounds.into_iter().map(|r| (r.start, r.end)).collect();
        for &(s, e) in &bounds {
            assert!(s <= e, "tile range start {s} exceeds end {e}");
        }
        Tile { bounds }
    }

    /// The full tile of a tensor with the given shape.
    pub fn full(shape: &[u64]) -> Self {
        Tile {
            bounds: shape.iter().map(|&n| (0, n)).collect(),
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.bounds.len()
    }

    /// The range of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn range(&self, i: usize) -> Range<u64> {
        let (s, e) = self.bounds[i];
        s..e
    }

    /// Number of elements covered.
    pub fn volume(&self) -> u64 {
        self.bounds.iter().map(|&(s, e)| e - s).product()
    }

    /// True if any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.bounds.iter().any(|&(s, e)| s == e)
    }

    /// The intersection with `other`, or `None` if they do not overlap on a
    /// region of positive volume.
    ///
    /// # Panics
    ///
    /// Panics if ranks differ.
    pub fn intersect(&self, other: &Tile) -> Option<Tile> {
        assert_eq!(self.rank(), other.rank(), "tile ranks differ");
        let mut bounds = Vec::with_capacity(self.rank());
        for (&(s1, e1), &(s2, e2)) in self.bounds.iter().zip(&other.bounds) {
            let s = s1.max(s2);
            let e = e1.min(e2);
            if s >= e {
                return None;
            }
            bounds.push((s, e));
        }
        Some(Tile { bounds })
    }

    /// True if `self` fully contains `other` (empty tiles are contained in
    /// everything of equal rank).
    ///
    /// # Panics
    ///
    /// Panics if ranks differ.
    pub fn contains(&self, other: &Tile) -> bool {
        assert_eq!(self.rank(), other.rank(), "tile ranks differ");
        other.is_empty()
            || self
                .bounds
                .iter()
                .zip(&other.bounds)
                .all(|(&(s1, e1), &(s2, e2))| s1 <= s2 && e2 <= e1)
    }
}

impl fmt::Display for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, &(s, e)) in self.bounds.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}..{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_emptiness() {
        let t = Tile::new([0..2, 1..4]);
        assert_eq!(t.volume(), 6);
        assert!(!t.is_empty());
        let e = Tile::new([0..0, 1..4]);
        assert_eq!(e.volume(), 0);
        assert!(e.is_empty());
    }

    #[test]
    fn full_covers_shape() {
        let t = Tile::full(&[3, 4, 5]);
        assert_eq!(t.volume(), 60);
        assert_eq!(t.range(1), 0..4);
    }

    #[test]
    fn intersection_overlapping() {
        let a = Tile::new([0..4, 0..2]);
        let b = Tile::new([2..6, 1..3]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Tile::new([2..4, 1..2]));
    }

    #[test]
    fn intersection_disjoint_is_none() {
        let a = Tile::new([0..2]);
        let b = Tile::new([2..4]);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn touching_tiles_do_not_intersect() {
        let a = Tile::new([0..2, 0..4]);
        let b = Tile::new([2..4, 0..4]);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn containment() {
        let outer = Tile::new([0..4, 0..4]);
        let inner = Tile::new([1..3, 0..4]);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&Tile::new([0..0, 0..0])));
    }

    #[test]
    fn display_is_readable() {
        let t = Tile::new([0..2, 3..7]);
        assert_eq!(t.to_string(), "[0..2, 3..7]");
    }

    #[test]
    #[should_panic(expected = "ranks differ")]
    fn rank_mismatch_panics() {
        let a = Tile::new([0..2]);
        let b = Tile::new([0..2, 0..2]);
        let _ = a.intersect(&b);
    }
}
