//! GSPMD/Alpa-style sharding specs.

use crate::error::MeshError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How one tensor dimension maps onto mesh axes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DimSharding {
    /// The dimension is replicated (`R`).
    Replicated,
    /// The dimension is sharded over the listed mesh axes in order
    /// (`S^0`, `S^1`, or `S^01`; the first axis is the slower-varying one).
    Sharded(Vec<usize>),
}

impl DimSharding {
    /// Shorthand for `S^a`.
    pub fn along(axis: usize) -> Self {
        DimSharding::Sharded(vec![axis])
    }

    /// True if this dimension is replicated.
    pub fn is_replicated(&self) -> bool {
        matches!(self, DimSharding::Replicated)
    }

    /// Mesh axes this dimension is sharded over (empty when replicated).
    pub fn axes(&self) -> &[usize] {
        match self {
            DimSharding::Replicated => &[],
            DimSharding::Sharded(a) => a,
        }
    }
}

/// The layout of an N-dimensional tensor over a 2-D mesh, as a per-dimension
/// list of [`DimSharding`]s.
///
/// The paper writes these as strings like `S^0 R`, `R S^{01}`; this type
/// parses and displays the compact form without carets: `"S0R"`, `"RS01"`.
///
/// A valid spec uses every mesh axis at most once across all dimensions.
/// Mesh axes that appear in no dimension replicate the tensor across that
/// axis.
///
/// # Example
///
/// ```
/// use crossmesh_mesh::{DimSharding, ShardingSpec};
///
/// # fn main() -> Result<(), crossmesh_mesh::MeshError> {
/// let spec: ShardingSpec = "S0RS1".parse()?;
/// assert_eq!(spec.rank(), 3);
/// assert_eq!(spec.dim(0), &DimSharding::along(0));
/// assert!(spec.dim(1).is_replicated());
/// assert_eq!(spec.to_string(), "S0RS1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardingSpec {
    dims: Vec<DimSharding>,
}

impl ShardingSpec {
    /// Builds a spec from per-dimension shardings.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::InvalidAxis`] if an axis is greater than 1 or
    /// used by more than one dimension (or twice within one dimension).
    pub fn new(dims: Vec<DimSharding>) -> Result<Self, MeshError> {
        let mut used = [false; 2];
        for d in &dims {
            for &a in d.axes() {
                if a > 1 {
                    return Err(MeshError::InvalidAxis { axis: a });
                }
                if used[a] {
                    return Err(MeshError::InvalidAxis { axis: a });
                }
                used[a] = true;
            }
        }
        Ok(ShardingSpec { dims })
    }

    /// A fully replicated spec of the given rank (`RR…R`).
    pub fn replicated(rank: usize) -> Self {
        ShardingSpec {
            dims: vec![DimSharding::Replicated; rank],
        }
    }

    /// Number of tensor dimensions this spec covers.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The sharding of tensor dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> &DimSharding {
        &self.dims[i]
    }

    /// Iterates over the per-dimension shardings.
    pub fn iter(&self) -> impl Iterator<Item = &DimSharding> {
        self.dims.iter()
    }

    /// Mesh axes not used by any dimension; the tensor is replicated across
    /// these axes.
    pub fn replicated_axes(&self) -> Vec<usize> {
        let mut used = [false; 2];
        for d in &self.dims {
            for &a in d.axes() {
                used[a] = true;
            }
        }
        (0..2).filter(|&a| !used[a]).collect()
    }

    /// True if no dimension is sharded.
    pub fn is_fully_replicated(&self) -> bool {
        self.dims.iter().all(DimSharding::is_replicated)
    }
}

impl fmt::Display for ShardingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.dims {
            match d {
                DimSharding::Replicated => write!(f, "R")?,
                DimSharding::Sharded(axes) => {
                    write!(f, "S")?;
                    for a in axes {
                        write!(f, "{a}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

impl FromStr for ShardingSpec {
    type Err = MeshError;

    /// Parses compact (`"S0RS01"`) or paper-style (`"S^0 R S^{01}"`) spec
    /// strings; whitespace, `^`, `{`, and `}` are ignored.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let cleaned: String = s
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '^' && *c != '{' && *c != '}')
            .collect();
        let err = |reason: &str| MeshError::ParseSpec {
            input: s.to_string(),
            reason: reason.to_string(),
        };
        let mut dims = Vec::new();
        let mut chars = cleaned.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                'R' | 'r' => dims.push(DimSharding::Replicated),
                'S' | 's' => {
                    let mut axes = Vec::new();
                    while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                        axes.push(d as usize);
                        chars.next();
                    }
                    if axes.is_empty() {
                        return Err(err("'S' must be followed by axis digits"));
                    }
                    dims.push(DimSharding::Sharded(axes));
                }
                other => return Err(err(&format!("unexpected character {other:?}"))),
            }
        }
        if dims.is_empty() {
            return Err(err("spec is empty"));
        }
        ShardingSpec::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_compact_specs() {
        let s: ShardingSpec = "S0RR".parse().unwrap();
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(0), &DimSharding::along(0));
        assert!(s.dim(1).is_replicated());
        assert!(s.dim(2).is_replicated());
    }

    #[test]
    fn parse_multi_axis() {
        let s: ShardingSpec = "RS01".parse().unwrap();
        assert_eq!(s.dim(1), &DimSharding::Sharded(vec![0, 1]));
    }

    #[test]
    fn parse_paper_notation() {
        let s: ShardingSpec = "S^{01} R".parse().unwrap();
        assert_eq!(s, "S01R".parse().unwrap());
        let s: ShardingSpec = "S^0 S^1".parse().unwrap();
        assert_eq!(s, "S0S1".parse().unwrap());
    }

    #[test]
    fn display_round_trips() {
        for text in ["S0R", "RS1", "S01RR", "S0S1", "RRR", "S1RR"] {
            let s: ShardingSpec = text.parse().unwrap();
            assert_eq!(s.to_string(), text);
            let back: ShardingSpec = s.to_string().parse().unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn reject_duplicate_axis() {
        assert!(matches!(
            "S0S0".parse::<ShardingSpec>(),
            Err(MeshError::InvalidAxis { axis: 0 })
        ));
        assert!(matches!(
            "S00".parse::<ShardingSpec>(),
            Err(MeshError::InvalidAxis { axis: 0 })
        ));
    }

    #[test]
    fn reject_axis_out_of_range() {
        assert!(matches!(
            "S2R".parse::<ShardingSpec>(),
            Err(MeshError::InvalidAxis { axis: 2 })
        ));
    }

    #[test]
    fn reject_garbage() {
        assert!("".parse::<ShardingSpec>().is_err());
        assert!("SxR".parse::<ShardingSpec>().is_err());
        assert!("S".parse::<ShardingSpec>().is_err());
        assert!("QR".parse::<ShardingSpec>().is_err());
    }

    #[test]
    fn replicated_axes_reports_unused() {
        let s: ShardingSpec = "S0R".parse().unwrap();
        assert_eq!(s.replicated_axes(), vec![1]);
        let s: ShardingSpec = "S0S1".parse().unwrap();
        assert!(s.replicated_axes().is_empty());
        let s = ShardingSpec::replicated(2);
        assert_eq!(s.replicated_axes(), vec![0, 1]);
        assert!(s.is_fully_replicated());
    }
}
