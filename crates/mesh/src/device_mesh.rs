//! 2-D logical device meshes over cluster devices.

use crate::error::MeshError;
use crossmesh_netsim::{ClusterSpec, DeviceId, HostId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;

/// A coordinate inside a mesh: `(row, col)` = `(axis-0 index, axis-1 index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MeshCoord {
    /// Index along mesh axis 0 (conventionally the host axis).
    pub row: usize,
    /// Index along mesh axis 1 (conventionally the device-within-host axis).
    pub col: usize,
}

/// A 2-D logical view `(m1, m2)` over a set of cluster devices, following
/// the GSPMD/Alpa definition the paper adopts.
///
/// The mesh stores, for every device, the host that owns it, so downstream
/// planners can reason about intra- vs. inter-host communication without a
/// cluster handle.
///
/// # Example
///
/// ```
/// use crossmesh_mesh::{DeviceMesh, MeshCoord};
/// use crossmesh_netsim::{ClusterSpec, LinkParams};
///
/// # fn main() -> Result<(), crossmesh_mesh::MeshError> {
/// let cluster = ClusterSpec::homogeneous(2, 4, LinkParams::new(100e9, 1.25e9));
/// // A (2, 4) mesh: rows are hosts, columns the GPUs within each host.
/// let mesh = DeviceMesh::from_cluster_hosts(&cluster, 0..2, "stage0")?;
/// assert_eq!(mesh.shape(), (2, 4));
/// assert_eq!(mesh.host(MeshCoord { row: 1, col: 0 }).0, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceMesh {
    name: String,
    shape: (usize, usize),
    /// Row-major: device at `(r, c)` is `devices[r * shape.1 + c]`.
    devices: Vec<DeviceId>,
    /// Host of each device, parallel to `devices`.
    hosts: Vec<HostId>,
}

impl DeviceMesh {
    /// Builds a mesh from explicit device and host lists (row-major).
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::ShapeMismatch`] if `devices.len() != m1 * m2`
    /// or `hosts.len() != devices.len()`, and
    /// [`MeshError::ClusterOutOfRange`] if a device id repeats.
    pub fn new(
        name: impl Into<String>,
        shape: (usize, usize),
        devices: Vec<DeviceId>,
        hosts: Vec<HostId>,
    ) -> Result<Self, MeshError> {
        if shape.0 * shape.1 != devices.len() || hosts.len() != devices.len() {
            return Err(MeshError::ShapeMismatch {
                shape,
                devices: devices.len(),
            });
        }
        let unique: BTreeSet<_> = devices.iter().collect();
        if unique.len() != devices.len() {
            return Err(MeshError::ClusterOutOfRange {
                what: "duplicate device in mesh".to_string(),
            });
        }
        Ok(DeviceMesh {
            name: name.into(),
            shape,
            devices,
            hosts,
        })
    }

    /// Builds an `(m1, m2)` mesh from the cluster: rows are hosts
    /// `host_offset..host_offset + m1`, columns the first `m2` devices of
    /// each of those hosts. This is the standard physical mapping where
    /// mesh axis 0 is the host axis.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::ClusterOutOfRange`] if the cluster does not
    /// have enough hosts or devices per host.
    pub fn from_cluster(
        cluster: &ClusterSpec,
        host_offset: usize,
        shape: (usize, usize),
        name: impl Into<String>,
    ) -> Result<Self, MeshError> {
        let (m1, m2) = shape;
        if host_offset + m1 > cluster.num_hosts() as usize {
            return Err(MeshError::ClusterOutOfRange {
                what: format!(
                    "hosts {}..{} of {}",
                    host_offset,
                    host_offset + m1,
                    cluster.num_hosts()
                ),
            });
        }
        let mut devices = Vec::with_capacity(m1 * m2);
        let mut hosts = Vec::with_capacity(m1 * m2);
        for h in host_offset..host_offset + m1 {
            let host = HostId(h as u32);
            let available = cluster.host(host).devices as usize;
            if m2 > available {
                return Err(MeshError::ClusterOutOfRange {
                    what: format!("{m2} devices on host {h} (has {available})"),
                });
            }
            for l in 0..m2 {
                devices.push(cluster.device(h as u32, l as u32));
                hosts.push(host);
            }
        }
        DeviceMesh::new(name, shape, devices, hosts)
    }

    /// Builds a mesh over whole hosts of the cluster: rows are the hosts in
    /// `hosts`, columns all devices of each host.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::ClusterOutOfRange`] if the range exceeds the
    /// cluster or the hosts have differing device counts.
    pub fn from_cluster_hosts(
        cluster: &ClusterSpec,
        hosts: Range<usize>,
        name: impl Into<String>,
    ) -> Result<Self, MeshError> {
        if hosts.end > cluster.num_hosts() as usize || hosts.start >= hosts.end {
            return Err(MeshError::ClusterOutOfRange {
                what: format!("host range {hosts:?} of {}", cluster.num_hosts()),
            });
        }
        let per_host = cluster.host(HostId(hosts.start as u32)).devices as usize;
        for h in hosts.clone() {
            if cluster.host(HostId(h as u32)).devices as usize != per_host {
                return Err(MeshError::ClusterOutOfRange {
                    what: format!("host {h} has a different device count"),
                });
            }
        }
        let m1 = hosts.end - hosts.start;
        DeviceMesh::from_cluster(cluster, hosts.start, (m1, per_host), name)
    }

    /// The mesh's name (used in labels and error messages).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical shape `(m1, m2)`.
    pub fn shape(&self) -> (usize, usize) {
        self.shape
    }

    /// Size of mesh axis `axis` (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `axis > 1`.
    pub fn axis_size(&self, axis: usize) -> usize {
        match axis {
            0 => self.shape.0,
            1 => self.shape.1,
            _ => panic!("mesh axis {axis} out of range"),
        }
    }

    /// Total number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The device at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn device(&self, coord: MeshCoord) -> DeviceId {
        assert!(
            coord.row < self.shape.0 && coord.col < self.shape.1,
            "mesh coordinate ({}, {}) out of {}x{}",
            coord.row,
            coord.col,
            self.shape.0,
            self.shape.1
        );
        self.devices[coord.row * self.shape.1 + coord.col]
    }

    /// The host owning the device at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn host(&self, coord: MeshCoord) -> HostId {
        assert!(coord.row < self.shape.0 && coord.col < self.shape.1);
        self.hosts[coord.row * self.shape.1 + coord.col]
    }

    /// The host owning `device`, if the device belongs to this mesh.
    pub fn host_of_device(&self, device: DeviceId) -> Option<HostId> {
        self.devices
            .iter()
            .position(|&d| d == device)
            .map(|i| self.hosts[i])
    }

    /// Iterates over all coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = MeshCoord> + '_ {
        let (m1, m2) = self.shape;
        (0..m1).flat_map(move |row| (0..m2).map(move |col| MeshCoord { row, col }))
    }

    /// All devices in row-major order.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// The distinct hosts of this mesh, ascending.
    pub fn distinct_hosts(&self) -> Vec<HostId> {
        let set: BTreeSet<HostId> = self.hosts.iter().copied().collect();
        set.into_iter().collect()
    }

    /// True if the meshes share no device.
    pub fn is_disjoint(&self, other: &DeviceMesh) -> bool {
        let mine: BTreeSet<_> = self.devices.iter().collect();
        other.devices.iter().all(|d| !mine.contains(d))
    }
}

impl fmt::Display for DeviceMesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}x{})", self.name, self.shape.0, self.shape.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_netsim::LinkParams;

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(4, 4, LinkParams::new(10e9, 1e9))
    }

    #[test]
    fn from_cluster_maps_rows_to_hosts() {
        let c = cluster();
        let m = DeviceMesh::from_cluster(&c, 1, (2, 3), "m").unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.device(MeshCoord { row: 0, col: 0 }), c.device(1, 0));
        assert_eq!(m.device(MeshCoord { row: 1, col: 2 }), c.device(2, 2));
        assert_eq!(m.host(MeshCoord { row: 1, col: 0 }), HostId(2));
        assert_eq!(m.distinct_hosts(), vec![HostId(1), HostId(2)]);
    }

    #[test]
    fn from_cluster_hosts_uses_whole_hosts() {
        let c = cluster();
        let m = DeviceMesh::from_cluster_hosts(&c, 0..2, "m").unwrap();
        assert_eq!(m.shape(), (2, 4));
        assert_eq!(m.num_devices(), 8);
    }

    #[test]
    fn out_of_range_requests_fail() {
        let c = cluster();
        assert!(DeviceMesh::from_cluster(&c, 3, (2, 2), "m").is_err());
        assert!(DeviceMesh::from_cluster(&c, 0, (1, 5), "m").is_err());
        assert!(DeviceMesh::from_cluster_hosts(&c, 2..2, "m").is_err());
    }

    #[test]
    fn disjointness() {
        let c = cluster();
        let a = DeviceMesh::from_cluster(&c, 0, (2, 4), "a").unwrap();
        let b = DeviceMesh::from_cluster(&c, 2, (2, 4), "b").unwrap();
        let overlapping = DeviceMesh::from_cluster(&c, 1, (2, 4), "c").unwrap();
        assert!(a.is_disjoint(&b));
        assert!(!a.is_disjoint(&overlapping));
    }

    #[test]
    fn duplicate_devices_rejected() {
        let err = DeviceMesh::new(
            "m",
            (1, 2),
            vec![DeviceId(0), DeviceId(0)],
            vec![HostId(0), HostId(0)],
        )
        .unwrap_err();
        assert!(matches!(err, MeshError::ClusterOutOfRange { .. }));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let err = DeviceMesh::new("m", (2, 2), vec![DeviceId(0)], vec![HostId(0)]).unwrap_err();
        assert!(matches!(err, MeshError::ShapeMismatch { .. }));
    }

    #[test]
    fn coords_iterate_row_major() {
        let c = cluster();
        let m = DeviceMesh::from_cluster(&c, 0, (2, 2), "m").unwrap();
        let coords: Vec<_> = m.coords().collect();
        assert_eq!(coords.len(), 4);
        assert_eq!(coords[0], MeshCoord { row: 0, col: 0 });
        assert_eq!(coords[1], MeshCoord { row: 0, col: 1 });
        assert_eq!(coords[2], MeshCoord { row: 1, col: 0 });
    }

    #[test]
    fn display_includes_shape() {
        let c = cluster();
        let m = DeviceMesh::from_cluster(&c, 0, (2, 2), "src").unwrap();
        assert_eq!(m.to_string(), "src(2x2)");
    }
}
