//! Errors for mesh and sharding-spec construction.

use std::error::Error;
use std::fmt;

/// Errors produced while building meshes, parsing specs, or decomposing
/// resharding tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MeshError {
    /// A sharding-spec string failed to parse.
    ParseSpec {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A mesh axis appears in more than one dimension of a spec, or an axis
    /// index is not 0 or 1.
    InvalidAxis {
        /// The axis in question.
        axis: usize,
    },
    /// The mesh shape does not match the number of devices.
    ShapeMismatch {
        /// Requested logical shape.
        shape: (usize, usize),
        /// Number of devices provided.
        devices: usize,
    },
    /// A mesh slice request exceeds the cluster (host offset/count or
    /// per-host device count out of range).
    ClusterOutOfRange {
        /// Description of what was out of range.
        what: String,
    },
    /// A spec's dimensionality differs from the tensor's.
    RankMismatch {
        /// Spec rank.
        spec: usize,
        /// Tensor rank.
        tensor: usize,
    },
    /// Source and destination meshes share a device, which cross-mesh
    /// resharding forbids (`Mesh_A ∩ Mesh_B = ∅`).
    OverlappingMeshes,
    /// A tensor dimension of size zero was supplied.
    EmptyTensor,
    /// A search or constraint problem has no feasible solution.
    Unsatisfiable {
        /// Description of the violated requirement.
        what: String,
    },
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::ParseSpec { input, reason } => {
                write!(f, "invalid sharding spec {input:?}: {reason}")
            }
            MeshError::InvalidAxis { axis } => {
                write!(f, "mesh axis {axis} is invalid or used more than once")
            }
            MeshError::ShapeMismatch { shape, devices } => write!(
                f,
                "mesh shape {}x{} needs {} devices, got {devices}",
                shape.0,
                shape.1,
                shape.0 * shape.1
            ),
            MeshError::ClusterOutOfRange { what } => {
                write!(f, "mesh does not fit in the cluster: {what}")
            }
            MeshError::RankMismatch { spec, tensor } => write!(
                f,
                "sharding spec has rank {spec} but the tensor has rank {tensor}"
            ),
            MeshError::OverlappingMeshes => {
                write!(f, "source and destination meshes must not share devices")
            }
            MeshError::EmptyTensor => write!(f, "tensor dimensions must be positive"),
            MeshError::Unsatisfiable { what } => write!(f, "no feasible solution: {what}"),
        }
    }
}

impl Error for MeshError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MeshError::OverlappingMeshes.to_string().contains("share"));
        let e = MeshError::ShapeMismatch {
            shape: (2, 3),
            devices: 4,
        };
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains("6 devices"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<MeshError>();
    }
}
