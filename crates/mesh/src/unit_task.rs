//! Decomposition of a cross-mesh resharding task into unit communication
//! tasks (paper §2.2).

use crate::device_mesh::DeviceMesh;
use crate::error::MeshError;
use crate::layout::Layout;
use crate::spec::ShardingSpec;
use crate::tile::Tile;
use crossmesh_netsim::{DeviceId, HostId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A destination device of a unit task and the sub-tile it actually needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Receiver {
    /// The receiving device.
    pub device: DeviceId,
    /// Host owning `device`.
    pub host: HostId,
    /// Intersection of the unit task's slice with this device's required
    /// tile; always non-empty.
    pub needed: Tile,
}

/// One *unit communication task*: a unique source data slice `DS_i` that
/// must travel from its replica set `N_i` on the source mesh to the
/// receiver set `M_i` on the destination mesh.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitTask {
    /// Position within the resharding task's deterministic slice order.
    pub index: usize,
    /// The unique source data slice.
    pub slice: Tile,
    /// Size of the slice in bytes.
    pub bytes: u64,
    /// Devices on the source mesh holding a replica of the slice
    /// (`N_i`), with their hosts; row-major mesh order.
    pub senders: Vec<(DeviceId, HostId)>,
    /// Devices on the destination mesh needing (part of) the slice
    /// (`M_i`); row-major mesh order.
    pub receivers: Vec<Receiver>,
}

impl UnitTask {
    /// Distinct hosts holding a replica, ascending.
    pub fn sender_hosts(&self) -> Vec<HostId> {
        let s: BTreeSet<HostId> = self.senders.iter().map(|&(_, h)| h).collect();
        s.into_iter().collect()
    }

    /// Distinct hosts receiving the slice, ascending.
    pub fn receiver_hosts(&self) -> Vec<HostId> {
        let s: BTreeSet<HostId> = self.receivers.iter().map(|r| r.host).collect();
        s.into_iter().collect()
    }

    /// Receiver devices on `host`, in mesh order.
    pub fn receivers_on(&self, host: HostId) -> Vec<DeviceId> {
        self.receivers
            .iter()
            .filter(|r| r.host == host)
            .map(|r| r.device)
            .collect()
    }
}

/// Granularity of the unit-task decomposition.
///
/// The paper's §2.2 text defines one unit task per unique *source* slice
/// (Figure 2), but its evaluation counts tasks per source-slice ×
/// destination-slice intersection (case 4 of Table 2 "has 64 unit
/// communication tasks": 8 source shards × 8 destination shards). The
/// intersection granularity is also what gives the scheduler the
/// reordering freedom the paper exploits in cases 3, 4, and 9, and avoids
/// over-sending when a receiver needs only part of a source slice — so it
/// is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// One unit task per unique source slice; receivers get the whole
    /// slice even if they need only part (the §2.2 / Figure 2 reading).
    SourceSlice,
    /// One unit task per non-empty intersection of a unique source slice
    /// with a unique destination slice (what the evaluation's task counts
    /// imply and what the Alpa runtime implements).
    Tile,
}

/// Decomposes a cross-mesh resharding with the default [`Granularity::Tile`]
/// granularity. See [`unit_tasks_with`].
///
/// # Errors
///
/// Returns [`MeshError::OverlappingMeshes`] if the meshes share a device,
/// or any layout error from [`Layout::new`].
pub fn unit_tasks(
    src_mesh: &DeviceMesh,
    src_spec: &ShardingSpec,
    dst_mesh: &DeviceMesh,
    dst_spec: &ShardingSpec,
    shape: &[u64],
    elem_bytes: u64,
) -> Result<Vec<UnitTask>, MeshError> {
    unit_tasks_with(
        src_mesh,
        src_spec,
        dst_mesh,
        dst_spec,
        shape,
        elem_bytes,
        Granularity::Tile,
    )
}

/// Decomposes the cross-mesh resharding of a tensor with `shape` and
/// `elem_bytes`-byte elements, from `src_spec` on `src_mesh` to `dst_spec`
/// on `dst_mesh`, into unit communication tasks at the chosen granularity.
///
/// With [`Granularity::Tile`], one task is produced per non-empty
/// intersection of a unique source slice and a unique destination slice;
/// its senders are the replicas of the source slice and its receivers the
/// replicas of the destination slice (each needing the full intersection).
///
/// With [`Granularity::SourceSlice`], one task is produced per unique,
/// non-empty source slice; its receivers are every destination device whose
/// required tile intersects the slice (each receiver records the exact
/// intersection it needs).
///
/// # Errors
///
/// Returns [`MeshError::OverlappingMeshes`] if the meshes share a device,
/// or any layout error from [`Layout::new`].
pub fn unit_tasks_with(
    src_mesh: &DeviceMesh,
    src_spec: &ShardingSpec,
    dst_mesh: &DeviceMesh,
    dst_spec: &ShardingSpec,
    shape: &[u64],
    elem_bytes: u64,
    granularity: Granularity,
) -> Result<Vec<UnitTask>, MeshError> {
    if !src_mesh.is_disjoint(dst_mesh) {
        return Err(MeshError::OverlappingMeshes);
    }
    let src_layout = Layout::new(src_mesh, src_spec, shape)?;
    let dst_layout = Layout::new(dst_mesh, dst_spec, shape)?;

    let mut tasks = Vec::new();
    for (slice, replicas) in src_layout.unique_slices() {
        let senders: Vec<(DeviceId, HostId)> = replicas
            .iter()
            .map(|&c| (src_mesh.device(c), src_mesh.host(c)))
            .collect();
        match granularity {
            Granularity::SourceSlice => {
                let mut receivers = Vec::new();
                for coord in dst_mesh.coords() {
                    let tile = dst_layout.tile_at(coord);
                    if let Some(needed) = tile.intersect(&slice) {
                        receivers.push(Receiver {
                            device: dst_mesh.device(coord),
                            host: dst_mesh.host(coord),
                            needed,
                        });
                    }
                }
                let index = tasks.len();
                tasks.push(UnitTask {
                    index,
                    slice: slice.clone(),
                    bytes: slice.volume() * elem_bytes,
                    senders,
                    receivers,
                });
            }
            Granularity::Tile => {
                for (dst_slice, dst_replicas) in dst_layout.unique_slices() {
                    let Some(inter) = slice.intersect(&dst_slice) else {
                        continue;
                    };
                    let receivers = dst_replicas
                        .iter()
                        .map(|&c| Receiver {
                            device: dst_mesh.device(c),
                            host: dst_mesh.host(c),
                            needed: inter.clone(),
                        })
                        .collect();
                    let index = tasks.len();
                    tasks.push(UnitTask {
                        index,
                        slice: inter.clone(),
                        bytes: inter.volume() * elem_bytes,
                        senders: senders.clone(),
                        receivers,
                    });
                }
            }
        }
    }
    Ok(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_netsim::{ClusterSpec, LinkParams};

    /// Figure 2's setting: two 2x2 meshes over four 2-GPU hosts.
    fn meshes() -> (DeviceMesh, DeviceMesh, ClusterSpec) {
        let c = ClusterSpec::homogeneous(4, 2, LinkParams::new(10e9, 1e9));
        let a = DeviceMesh::from_cluster(&c, 0, (2, 2), "A").unwrap();
        let b = DeviceMesh::from_cluster(&c, 2, (2, 2), "B").unwrap();
        (a, b, c)
    }

    fn spec(s: &str) -> ShardingSpec {
        s.parse().unwrap()
    }

    #[test]
    fn figure2_task1_s01r_to_s0r() {
        // 4 unit tasks (one per source row); the first row is needed by
        // both devices of the destination's first mesh row.
        let (a, b, _) = meshes();
        let tasks = unit_tasks(&a, &spec("S01R"), &b, &spec("S0R"), &[4, 4], 1).unwrap();
        assert_eq!(tasks.len(), 4);
        let t0 = &tasks[0];
        assert_eq!(t0.slice, Tile::new([0..1, 0..4]));
        assert_eq!(t0.bytes, 4);
        assert_eq!(t0.senders.len(), 1, "S^{{01}} has no replicas");
        assert_eq!(t0.receivers.len(), 2);
        // Both receivers need the full row (it is contained in their tile).
        for r in &t0.receivers {
            assert_eq!(r.needed, t0.slice);
        }
    }

    #[test]
    fn figure2_task2_s0r_to_s0s1() {
        // At tile granularity: 2 unique source half-tensors x 2 destination
        // quarters each = 4 unit tasks, one receiver each, 2 sender
        // replicas each.
        let (a, b, _) = meshes();
        let tasks = unit_tasks(&b, &spec("S0R"), &a, &spec("S0S1"), &[4, 4], 1).unwrap();
        assert_eq!(tasks.len(), 4);
        let t0 = &tasks[0];
        assert_eq!(t0.slice, Tile::new([0..2, 0..2]));
        assert_eq!(t0.senders.len(), 2, "S^0 R replicates along axis 1");
        assert_eq!(t0.receivers.len(), 1);
        assert_eq!(t0.receivers[0].needed, t0.slice);
    }

    #[test]
    fn figure2_task2_source_slice_granularity_matches_paper_text() {
        // The §2.2 / Figure 2 reading: 2 unit tasks, each sending a whole
        // 2x4 slice to the 2 devices that need parts of it.
        let (a, b, _) = meshes();
        let tasks = unit_tasks_with(
            &b,
            &spec("S0R"),
            &a,
            &spec("S0S1"),
            &[4, 4],
            1,
            Granularity::SourceSlice,
        )
        .unwrap();
        assert_eq!(tasks.len(), 2);
        let t0 = &tasks[0];
        assert_eq!(t0.slice, Tile::new([0..2, 0..4]));
        assert_eq!(t0.receivers.len(), 2);
        assert_eq!(t0.receivers[0].needed, Tile::new([0..2, 0..2]));
        assert_eq!(t0.receivers[1].needed, Tile::new([0..2, 2..4]));
    }

    #[test]
    fn case4_like_decomposition_yields_64_tasks() {
        // Table 2 case 4: RS^{01}R -> S^{01}RR on (2,4) meshes; the paper
        // reports 64 unit communication tasks (8 source x 8 destination
        // shards).
        let c = ClusterSpec::homogeneous(4, 4, LinkParams::new(10e9, 1e9));
        let a = DeviceMesh::from_cluster(&c, 0, (2, 4), "A").unwrap();
        let b = DeviceMesh::from_cluster(&c, 2, (2, 4), "B").unwrap();
        let tasks = unit_tasks(&a, &spec("RS01R"), &b, &spec("S01RR"), &[64, 64, 8], 1).unwrap();
        assert_eq!(tasks.len(), 64);
    }

    #[test]
    fn replicated_to_replicated_is_one_multicast() {
        let (a, b, _) = meshes();
        let tasks = unit_tasks(&a, &spec("RR"), &b, &spec("RR"), &[4, 4], 2).unwrap();
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].senders.len(), 4);
        assert_eq!(tasks[0].receivers.len(), 4);
        assert_eq!(tasks[0].bytes, 32);
    }

    #[test]
    fn overlapping_meshes_rejected() {
        let c = ClusterSpec::homogeneous(2, 2, LinkParams::new(10e9, 1e9));
        let a = DeviceMesh::from_cluster(&c, 0, (2, 2), "A").unwrap();
        let b = DeviceMesh::from_cluster(&c, 1, (1, 2), "B").unwrap();
        let err = unit_tasks(&a, &spec("RR"), &b, &spec("RR"), &[4, 4], 1).unwrap_err();
        assert_eq!(err, MeshError::OverlappingMeshes);
    }

    #[test]
    fn every_destination_tile_is_fully_covered() {
        // Union of receiver intersections must exactly cover each dst tile.
        let (a, b, _) = meshes();
        for (sa, sb) in [
            ("S0R", "RS1"),
            ("S01R", "S0S1"),
            ("RS0", "S1R"),
            ("RR", "S01R"),
            ("S0S1", "S1S0"),
        ] {
            let tasks = unit_tasks(&a, &spec(sa), &b, &spec(sb), &[8, 8], 1).unwrap();
            let dst_layout = Layout::new(&b, &spec(sb), &[8, 8]).unwrap();
            for coord in b.coords() {
                let dev = b.device(coord);
                let tile = dst_layout.tile_at(coord);
                if tile.is_empty() {
                    continue;
                }
                let got: u64 = tasks
                    .iter()
                    .flat_map(|t| &t.receivers)
                    .filter(|r| r.device == dev)
                    .map(|r| r.needed.volume())
                    .sum();
                assert_eq!(
                    got,
                    tile.volume(),
                    "device {dev} not exactly covered for {sa}->{sb}"
                );
            }
        }
    }

    #[test]
    fn total_bytes_equal_tensor_size() {
        // Lower bound of §2.2: the unique slices partition the tensor.
        let (a, b, _) = meshes();
        let tasks = unit_tasks(&a, &spec("S0S1"), &b, &spec("RS0"), &[16, 8], 4).unwrap();
        let total: u64 = tasks.iter().map(|t| t.bytes).sum();
        assert_eq!(total, 16 * 8 * 4);
    }

    #[test]
    fn host_helpers() {
        let (a, b, _) = meshes();
        let tasks = unit_tasks(&a, &spec("RR"), &b, &spec("RR"), &[4, 4], 1).unwrap();
        let t = &tasks[0];
        assert_eq!(t.sender_hosts(), vec![HostId(0), HostId(1)]);
        assert_eq!(t.receiver_hosts(), vec![HostId(2), HostId(3)]);
        assert_eq!(t.receivers_on(HostId(2)).len(), 2);
        assert!(t.receivers_on(HostId(0)).is_empty());
    }

    #[test]
    fn uneven_shapes_produce_consistent_tasks() {
        let (a, b, _) = meshes();
        // 5 rows over 4 source shards ([0,2),[2,4),[4,5), one empty) and 2
        // destination shards ([0,3),[3,5)): 4 non-empty intersections.
        let tasks = unit_tasks(&a, &spec("S01R"), &b, &spec("S0R"), &[5, 3], 1).unwrap();
        assert_eq!(tasks.len(), 4);
        let total: u64 = tasks.iter().map(|t| t.bytes).sum();
        assert_eq!(total, 15);
    }
}
