//! Distributed tensor layouts: which tile each mesh coordinate holds.

use crate::device_mesh::{DeviceMesh, MeshCoord};
use crate::error::MeshError;
use crate::spec::{DimSharding, ShardingSpec};
use crate::tile::Tile;
use std::collections::BTreeMap;

/// The concrete layout of a tensor over a mesh: one [`Tile`] per mesh
/// coordinate, derived from a [`ShardingSpec`].
///
/// Uneven divisions are handled by ceiling-sized tiles: shard `k` of a
/// dimension of size `n` split `s` ways covers
/// `[min(k·⌈n/s⌉, n), min((k+1)·⌈n/s⌉, n))`; trailing shards may be smaller
/// or empty. (The paper notes Alpa cannot handle uneven partitions while
/// its broadcast approach handles "tiling, padding, and pipelining".)
///
/// # Example
///
/// ```
/// use crossmesh_mesh::{DeviceMesh, Layout, MeshCoord, Tile};
/// use crossmesh_netsim::{ClusterSpec, LinkParams};
///
/// # fn main() -> Result<(), crossmesh_mesh::MeshError> {
/// let cluster = ClusterSpec::homogeneous(2, 2, LinkParams::new(100e9, 1.25e9));
/// let mesh = DeviceMesh::from_cluster(&cluster, 0, (2, 2), "m")?;
/// // S^0 R: rows split over the host axis, replicated over the other.
/// let layout = Layout::new(&mesh, &"S0R".parse()?, &[4, 4])?;
/// assert_eq!(layout.tile_at(MeshCoord { row: 0, col: 1 }), &Tile::new([0..2, 0..4]));
/// assert_eq!(layout.unique_slices().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    shape: Vec<u64>,
    mesh_shape: (usize, usize),
    /// Row-major per-coordinate tiles.
    tiles: Vec<Tile>,
}

impl Layout {
    /// Computes the layout of a tensor with `shape` laid out on `mesh`
    /// under `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::RankMismatch`] if the spec rank differs from
    /// the tensor rank and [`MeshError::EmptyTensor`] if any dimension is
    /// zero.
    pub fn new(mesh: &DeviceMesh, spec: &ShardingSpec, shape: &[u64]) -> Result<Self, MeshError> {
        if spec.rank() != shape.len() {
            return Err(MeshError::RankMismatch {
                spec: spec.rank(),
                tensor: shape.len(),
            });
        }
        if shape.contains(&0) {
            return Err(MeshError::EmptyTensor);
        }
        let mut tiles = Vec::with_capacity(mesh.num_devices());
        for coord in mesh.coords() {
            tiles.push(tile_for(mesh, spec, shape, coord));
        }
        Ok(Layout {
            shape: shape.to_vec(),
            mesh_shape: mesh.shape(),
            tiles,
        })
    }

    /// The tensor shape this layout distributes.
    pub fn shape(&self) -> &[u64] {
        &self.shape
    }

    /// The tile held by the device at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is out of the mesh.
    pub fn tile_at(&self, coord: MeshCoord) -> &Tile {
        assert!(
            coord.row < self.mesh_shape.0 && coord.col < self.mesh_shape.1,
            "coordinate out of mesh"
        );
        &self.tiles[coord.row * self.mesh_shape.1 + coord.col]
    }

    /// Iterates `(coord, tile)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (MeshCoord, &Tile)> {
        let (m1, m2) = self.mesh_shape;
        (0..m1)
            .flat_map(move |row| (0..m2).map(move |col| MeshCoord { row, col }))
            .zip(self.tiles.iter())
    }

    /// Groups coordinates by the tile they hold, dropping empty tiles.
    /// Each entry is a *unique data slice* in the paper's sense: the tile
    /// plus the set of replica coordinates holding it.
    ///
    /// The result is deterministic: slices ascend by tile bounds and
    /// replica lists are in row-major coordinate order.
    pub fn unique_slices(&self) -> Vec<(Tile, Vec<MeshCoord>)> {
        let mut groups: BTreeMap<&Tile, Vec<MeshCoord>> = BTreeMap::new();
        for (coord, tile) in self.iter() {
            if !tile.is_empty() {
                groups.entry(tile).or_default().push(coord);
            }
        }
        groups
            .into_iter()
            .map(|(t, coords)| (t.clone(), coords))
            .collect()
    }

    /// Total elements held across all devices (counting replicas once per
    /// holder). Equals tensor volume times the replication factor when the
    /// division is even.
    pub fn total_held_elements(&self) -> u64 {
        self.tiles.iter().map(Tile::volume).sum()
    }
}

fn tile_for(mesh: &DeviceMesh, spec: &ShardingSpec, shape: &[u64], coord: MeshCoord) -> Tile {
    let coord_along = |axis: usize| -> usize {
        match axis {
            0 => coord.row,
            1 => coord.col,
            _ => unreachable!("spec validation rejects axes > 1"),
        }
    };
    let mut bounds = Vec::with_capacity(shape.len());
    for (dim, n) in spec.iter().zip(shape.iter().copied()) {
        match dim {
            DimSharding::Replicated => bounds.push(0..n),
            DimSharding::Sharded(axes) => {
                let mut shards = 1usize;
                let mut index = 0usize;
                for &a in axes {
                    shards *= mesh.axis_size(a);
                    index = index * mesh.axis_size(a) + coord_along(a);
                }
                let chunk = n.div_ceil(shards as u64);
                let start = (index as u64 * chunk).min(n);
                let end = (start + chunk).min(n);
                bounds.push(start..end);
            }
        }
    }
    Tile::new(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmesh_netsim::{ClusterSpec, LinkParams};

    fn mesh_2x2() -> DeviceMesh {
        let c = ClusterSpec::homogeneous(2, 2, LinkParams::new(10e9, 1e9));
        DeviceMesh::from_cluster(&c, 0, (2, 2), "m").unwrap()
    }

    fn at(row: usize, col: usize) -> MeshCoord {
        MeshCoord { row, col }
    }

    #[test]
    fn figure2_spec1_s01_r() {
        // 4x4 matrix, S^{01}R on a 2x2 mesh: each device one distinct row.
        let m = mesh_2x2();
        let l = Layout::new(&m, &"S01R".parse().unwrap(), &[4, 4]).unwrap();
        assert_eq!(l.tile_at(at(0, 0)), &Tile::new([0..1, 0..4]));
        assert_eq!(l.tile_at(at(0, 1)), &Tile::new([1..2, 0..4]));
        assert_eq!(l.tile_at(at(1, 0)), &Tile::new([2..3, 0..4]));
        assert_eq!(l.tile_at(at(1, 1)), &Tile::new([3..4, 0..4]));
        assert_eq!(l.unique_slices().len(), 4);
    }

    #[test]
    fn figure2_spec2_s0_r() {
        // S^0 R: rows split across axis 0, replicated across axis 1.
        let m = mesh_2x2();
        let l = Layout::new(&m, &"S0R".parse().unwrap(), &[4, 4]).unwrap();
        assert_eq!(l.tile_at(at(0, 0)), &Tile::new([0..2, 0..4]));
        assert_eq!(l.tile_at(at(0, 1)), &Tile::new([0..2, 0..4]));
        assert_eq!(l.tile_at(at(1, 0)), &Tile::new([2..4, 0..4]));
        let slices = l.unique_slices();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].1, vec![at(0, 0), at(0, 1)]);
    }

    #[test]
    fn figure2_spec3_s0_s1() {
        // S^0 S^1: 2x2 blocks.
        let m = mesh_2x2();
        let l = Layout::new(&m, &"S0S1".parse().unwrap(), &[4, 4]).unwrap();
        assert_eq!(l.tile_at(at(0, 0)), &Tile::new([0..2, 0..2]));
        assert_eq!(l.tile_at(at(0, 1)), &Tile::new([0..2, 2..4]));
        assert_eq!(l.tile_at(at(1, 1)), &Tile::new([2..4, 2..4]));
        assert_eq!(l.unique_slices().len(), 4);
    }

    #[test]
    fn fully_replicated_has_one_slice() {
        let m = mesh_2x2();
        let l = Layout::new(&m, &ShardingSpec::replicated(2), &[4, 4]).unwrap();
        let slices = l.unique_slices();
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].0, Tile::full(&[4, 4]));
        assert_eq!(slices[0].1.len(), 4);
    }

    #[test]
    fn sharded_dim1_along_axis1() {
        let m = mesh_2x2();
        let l = Layout::new(&m, &"RS1".parse().unwrap(), &[4, 4]).unwrap();
        // Axis 0 unused: rows replicate.
        assert_eq!(l.tile_at(at(0, 0)), l.tile_at(at(1, 0)));
        assert_eq!(l.tile_at(at(0, 0)), &Tile::new([0..4, 0..2]));
        assert_eq!(l.tile_at(at(0, 1)), &Tile::new([0..4, 2..4]));
    }

    #[test]
    fn uneven_division_produces_ragged_tiles() {
        // Dimension of 5 split 4 ways: ceil = 2, shards [0,2),[2,4),[4,5),[5,5).
        let m = mesh_2x2();
        let l = Layout::new(&m, &"S01R".parse().unwrap(), &[5, 4]).unwrap();
        assert_eq!(l.tile_at(at(0, 0)).range(0), 0..2);
        assert_eq!(l.tile_at(at(1, 0)).range(0), 4..5);
        assert!(l.tile_at(at(1, 1)).is_empty());
        // Empty tiles are not unique slices.
        assert_eq!(l.unique_slices().len(), 3);
    }

    #[test]
    fn slices_tile_the_tensor_exactly() {
        let m = mesh_2x2();
        for spec in ["S0R", "RS1", "S01R", "S0S1", "RR", "S1S0", "RS01"] {
            let l = Layout::new(&m, &spec.parse().unwrap(), &[8, 6]).unwrap();
            let total: u64 = l.unique_slices().iter().map(|(t, _)| t.volume()).sum();
            assert_eq!(total, 48, "spec {spec} does not tile the tensor");
        }
    }

    #[test]
    fn rank_mismatch_is_error() {
        let m = mesh_2x2();
        let err = Layout::new(&m, &"S0R".parse().unwrap(), &[4]).unwrap_err();
        assert!(matches!(
            err,
            MeshError::RankMismatch { spec: 2, tensor: 1 }
        ));
    }

    #[test]
    fn zero_dim_is_error() {
        let m = mesh_2x2();
        let err = Layout::new(&m, &"RR".parse().unwrap(), &[4, 0]).unwrap_err();
        assert_eq!(err, MeshError::EmptyTensor);
    }

    #[test]
    fn axis_order_in_multi_axis_sharding_matters() {
        // S^{01} vs S^{10}: shard index interleaving differs.
        let m = mesh_2x2();
        let l01 = Layout::new(&m, &"S01R".parse().unwrap(), &[4, 4]).unwrap();
        let l10 = Layout::new(&m, &"S10R".parse().unwrap(), &[4, 4]).unwrap();
        // Under S^{01}, coordinate (0,1) holds shard 1; under S^{10} it
        // holds shard 2.
        assert_eq!(l01.tile_at(at(0, 1)).range(0), 1..2);
        assert_eq!(l10.tile_at(at(0, 1)).range(0), 2..3);
    }
}
