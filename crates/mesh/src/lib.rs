//! Device meshes, sharding specs, and distributed tensor layouts.
//!
//! This crate implements the paper's §2.2 formalization:
//!
//! * A [`DeviceMesh`] is a 2-D logical view `(m1, m2)` of a group of
//!   devices, each device belonging to a host of the simulated cluster.
//! * A [`ShardingSpec`] describes how an N-dimensional tensor is laid out
//!   over a mesh: each tensor dimension is either replicated (`R`) or
//!   sharded over one or more mesh axes (`S^0`, `S^1`, `S^01`).
//! * A [`Layout`] maps every mesh coordinate to the [`Tile`] (a hyper-
//!   rectangular index range) of the tensor that device holds.
//! * [`unit_tasks`] decomposes a **cross-mesh resharding task** — a tensor
//!   sharded on a source mesh that must appear with another spec on a
//!   destination mesh — into the paper's *unit communication tasks*, each
//!   carrying its replica set `N_i` and receiver set `M_i`. Two
//!   granularities are supported (see [`Granularity`]); the default is the
//!   source×destination intersection-tile granularity the paper's
//!   evaluation uses.
//!
//! # Example
//!
//! Task 1 of Figure 2 of the paper: a 4×4 matrix moves from spec `S^01 R`
//! on a 2×2 mesh to spec `S^0 R` on another 2×2 mesh.
//!
//! ```
//! use crossmesh_mesh::{DeviceMesh, ShardingSpec, unit_tasks};
//! use crossmesh_netsim::{ClusterSpec, LinkParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = ClusterSpec::homogeneous(4, 2, LinkParams::new(10e9, 1e9));
//! let mesh_a = DeviceMesh::from_cluster(&cluster, 0, (2, 2), "A")?;
//! let mesh_b = DeviceMesh::from_cluster(&cluster, 2, (2, 2), "B")?;
//! let tasks = unit_tasks(
//!     &mesh_a,
//!     &"S01R".parse::<ShardingSpec>()?,
//!     &mesh_b,
//!     &"S0R".parse::<ShardingSpec>()?,
//!     &[4, 4],
//!     4,
//! )?;
//! // One unit task per source row; the first row goes to both devices of
//! // the destination mesh's first row.
//! assert_eq!(tasks.len(), 4);
//! assert_eq!(tasks[0].receivers.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod device_mesh;
mod error;
mod layout;
mod spec;
mod tile;
mod unit_task;

pub use device_mesh::{DeviceMesh, MeshCoord};
pub use error::MeshError;
pub use layout::Layout;
pub use spec::{DimSharding, ShardingSpec};
pub use tile::Tile;
pub use unit_task::{unit_tasks, unit_tasks_with, Granularity, Receiver, UnitTask};
