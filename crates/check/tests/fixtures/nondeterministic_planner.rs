//! Lint fixture: a deliberately nondeterministic "planner" that violates
//! every determinism rule. Never compiled — `crossmesh-check`'s lint tests
//! scan this file (as if it lived at `crates/core/src/planners/`) to prove
//! the scanner catches each banned construct.

use std::collections::HashMap;
use std::time::Instant;

pub fn plan_badly(loads: &HashMap<u32, u64>) -> Vec<u32> {
    let started = Instant::now();
    let mut order: Vec<u32> = loads.keys().copied().collect(); // hash order!
    let mut rng = rand::thread_rng();
    order.sort_by_key(|_| started.elapsed().as_nanos());
    let _ = rng;
    order
}
