//! Determinism lint runner: scans the workspace sources and exits non-zero
//! on any finding. CI's lint gate.
//!
//! ```text
//! cargo run -p crossmesh-check --bin crossmesh-lint [-- --root DIR] [--allow FILE] [--format text|json]
//! ```

use crossmesh_check::lint;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let root = PathBuf::from(get("--root").unwrap_or("."));
    let allow_path = get("--allow")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("crates/check/lint-allow.txt"));
    let format = get("--format").unwrap_or("text");

    let allow = match lint::load_allowlist(&allow_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("crossmesh-lint: reading {}: {e}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };
    let report = match lint::lint_repo(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("crossmesh-lint: scanning {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if format == "json" {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.diagnostics).expect("diagnostics serialize")
        );
    } else if report.diagnostics.is_empty() {
        println!(
            "crossmesh-lint: clean ({} files, {} allowlist entries)",
            report.files_scanned,
            allow.len()
        );
    } else {
        println!("{}", crossmesh_check::render_text(&report.diagnostics));
        println!(
            "crossmesh-lint: {} finding(s) in {} files",
            report.diagnostics.len(),
            report.files_scanned
        );
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
