//! Bounded model-checker runner: exhaustively explores the interleavings
//! of a suite of representative dataflow programs (the shapes the threaded
//! runtime actually runs) and exits non-zero on any violation. Also
//! self-tests the checker by asserting it convicts a known-deadlocking and
//! a known-double-delivering program.
//!
//! ```text
//! cargo run -p crossmesh-check --bin crossmesh-modelcheck [-- --smoke] [--max-transitions N]
//! ```

use crossmesh_check::model::{check, program_from_plan, Bound, Channel, Op, Program, Thread};
use crossmesh_check::verify::AssignmentView;
use crossmesh_check::Rule;
use crossmesh_collectives::Strategy;
use crossmesh_mesh::{Receiver, Tile, UnitTask};
use crossmesh_netsim::{DeviceId, HostId};
use std::process::ExitCode;

/// A fan-out resharding shape: `senders` source devices each shipping one
/// unit to `receivers` destination devices.
fn fan_program(senders: u32, receivers: u32, capacity: usize) -> Program {
    let mut units = Vec::new();
    let mut views = Vec::new();
    for s in 0..senders {
        let slice = Tile::new([u64::from(s)..u64::from(s) + 1, 0..u64::from(receivers)]);
        units.push(UnitTask {
            index: s as usize,
            slice: slice.clone(),
            bytes: slice.volume(),
            senders: vec![(DeviceId(s), HostId(0))],
            receivers: (0..receivers)
                .map(|r| Receiver {
                    device: DeviceId(100 + r),
                    host: HostId(1),
                    needed: Tile::new([
                        u64::from(s)..u64::from(s) + 1,
                        u64::from(r)..u64::from(r) + 1,
                    ]),
                })
                .collect(),
        });
        views.push(AssignmentView {
            unit: s as usize,
            sender: DeviceId(s),
            sender_host: HostId(0),
            strategy: Strategy::SendRecv,
        });
    }
    program_from_plan(&units, &views, capacity)
}

fn deadlocking_program() -> Program {
    let send = |chan, piece| Op::Send {
        chan,
        piece,
        bytes: 1,
    };
    Program {
        channels: vec![Channel { capacity: 1 }, Channel { capacity: 1 }],
        threads: vec![
            Thread {
                name: "t0".into(),
                ops: vec![send(0, 0), send(0, 1), Op::Recv { chan: 1 }],
            },
            Thread {
                name: "t1".into(),
                ops: vec![send(1, 2), send(1, 3), Op::Recv { chan: 0 }],
            },
        ],
    }
}

fn double_delivery_program() -> Program {
    let send = |piece| Op::Send {
        chan: 0,
        piece,
        bytes: 4,
    };
    Program {
        channels: vec![Channel { capacity: 4 }],
        threads: vec![
            Thread {
                name: "send:a".into(),
                ops: vec![send(9), send(9)],
            },
            Thread {
                name: "asm".into(),
                ops: vec![Op::Recv { chan: 0 }; 3],
            },
        ],
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let max_transitions = args
        .iter()
        .position(|a| a == "--max-transitions")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 100_000 } else { 2_000_000 });
    let bound = Bound { max_transitions };

    // Dataflow shapes the runtime actually executes. Smoke trims the suite
    // to what CI can exhaust in well under a second.
    let suite: Vec<(String, Program)> = if smoke {
        vec![
            ("fan 1x2".into(), fan_program(1, 2, 2)),
            ("fan 2x2".into(), fan_program(2, 2, 2)),
            ("fan 2x2 cap1".into(), fan_program(2, 2, 1)),
        ]
    } else {
        vec![
            ("fan 1x2".into(), fan_program(1, 2, 2)),
            ("fan 2x2".into(), fan_program(2, 2, 2)),
            ("fan 2x2 cap1".into(), fan_program(2, 2, 1)),
            ("fan 3x2".into(), fan_program(3, 2, 2)),
            ("fan 2x3 cap1".into(), fan_program(2, 3, 1)),
        ]
    };

    let mut failed = false;
    for (name, program) in &suite {
        let r = check(program, bound);
        let status = if r.violations.is_empty() {
            "ok"
        } else {
            failed = true;
            "VIOLATION"
        };
        println!(
            "modelcheck {name}: {status} ({} interleavings, {} transitions{})",
            r.interleavings,
            r.transitions,
            if r.truncated { ", TRUNCATED" } else { "" }
        );
        for v in &r.violations {
            println!("  {v}");
        }
        if r.truncated {
            // A truncated clean run proves nothing; treat as failure so CI
            // bounds are always honest.
            println!("  bound too small: raise --max-transitions");
            failed = true;
        }
    }

    // Self-test: the checker must convict seeded defects, or a silent
    // regression in the checker would make every "ok" above meaningless.
    let dl = check(&deadlocking_program(), bound);
    if !dl.violations.iter().any(|d| d.rule == Rule::ModelDeadlock) {
        println!("modelcheck self-test: FAILED to catch seeded deadlock");
        failed = true;
    } else {
        println!("modelcheck self-test: seeded deadlock caught");
    }
    let dd = check(&double_delivery_program(), bound);
    if !dd
        .violations
        .iter()
        .any(|d| d.rule == Rule::ModelDoubleDelivery)
    {
        println!("modelcheck self-test: FAILED to catch seeded double delivery");
        failed = true;
    } else {
        println!("modelcheck self-test: seeded double delivery caught");
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
