//! Happens-before race detector runner: sweeps the seeded defect
//! self-tests (every defect class must convict under every schedule seed)
//! and the clean concurrent suite (which must be silent at pool widths
//! 1, 4, and 8), exiting non-zero on any miss.
//!
//! ```text
//! cargo run -p crossmesh-check --bin crossmesh-race [-- --smoke] [--self-test] [--seeds N]
//! ```
//!
//! `--self-test` runs only the seeded-defect half; the default runs both.
//! `--smoke` trims the seed count for CI.

use crossmesh_check::race::{run_clean, run_defect, Defect};
use crossmesh_check::schedules::sweep;
use std::process::ExitCode;

const CLEAN_WIDTHS: [usize; 3] = [1, 4, 8];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let self_test_only = args.iter().any(|a| a == "--self-test");
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 8 } else { 32 });

    let mut failed = false;

    // Seeded defects: the detector must convict every class under every
    // schedule seed — a single silent seed means a real race of that
    // shape could slip through the clean suite below.
    for defect in Defect::all() {
        let report = sweep(0, seeds, |seed| (run_defect(defect, seed), None));
        let convicted = report.convicting_seeds().len() as u64;
        let matching = report
            .outcomes
            .iter()
            .filter(|o| {
                o.diagnostics
                    .iter()
                    .any(|d| defect.expected_rules().contains(&d.rule))
            })
            .count() as u64;
        let status = if matching == seeds { "ok" } else { "MISSED" };
        println!(
            "race self-test {}: {status} ({matching}/{seeds} seeds convicted under {}, \
             {convicted}/{seeds} under any rule, {} findings)",
            defect.name(),
            defect
                .expected_rules()
                .iter()
                .map(|r| r.id())
                .collect::<Vec<_>>()
                .join("|"),
            report.total_findings(),
        );
        if matching != seeds {
            failed = true;
            for outcome in report
                .outcomes
                .iter()
                .filter(|o| o.diagnostics.is_empty())
                .take(3)
            {
                println!("  seed {} produced no findings", outcome.seed);
            }
        }
    }

    if !self_test_only {
        // Clean suite: properly synchronized pool workloads must stay
        // silent at every width, or the detector is crying wolf.
        for width in CLEAN_WIDTHS {
            let clean_seeds = if smoke { seeds.min(4) } else { seeds.min(8) };
            let report = sweep(0, clean_seeds, |seed| (run_clean(width, seed), None));
            let findings = report.total_findings();
            let oracle_failures = report.oracle_failures();
            let status = if findings == 0 && oracle_failures.is_empty() {
                "ok"
            } else {
                failed = true;
                "FALSE POSITIVE"
            };
            println!(
                "race clean width {width}: {status} ({clean_seeds} seeds, {findings} findings, \
                 {} oracle failures)",
                oracle_failures.len()
            );
            for outcome in report.outcomes.iter().filter(|o| !o.diagnostics.is_empty()) {
                for d in &outcome.diagnostics {
                    println!("  seed {}: {d}", outcome.seed);
                }
            }
            for seed in &oracle_failures {
                println!("  seed {seed}: equivalence oracle failed");
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
