//! Bounded model checker for the threaded runtime's dataflow programs.
//!
//! `crossmesh-runtime`'s plan executor is a fixed shape: one thread per
//! sender device pushing tile pieces into bounded per-destination channels,
//! one assembler thread per destination device draining its channel until
//! every sender hangs up. [`Program`] is that shape as data; [`check`] is a
//! deterministic scheduler that explores *every* interleaving of a small
//! program (pruned with sleep sets, DPOR-style, and cut off at a
//! configurable transition bound) and asserts, on every path:
//!
//! * **no deadlock** — some thread can always step until all finish;
//! * **no double delivery** — no piece is ever received twice;
//! * **byte-exact delivery** — per channel, received bytes equal sent
//!   bytes, and no sent piece is lost.
//!
//! Exhaustive exploration is exponential, so this is a checker for *small*
//! programs — the point is to prove the communication skeleton (the part
//! that could deadlock or double-deliver) correct for representative
//! shapes, the way `loom` proves lock-free code correct on small cases.

use crate::{record_model_transitions, Diagnostic, Rule};
use crossmesh_mesh::UnitTask;
use crossmesh_netsim::DeviceId;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};

/// One bounded channel: delivers pieces in FIFO order, blocks senders when
/// `capacity` pieces are in flight.
#[derive(Debug, Clone, Serialize)]
pub struct Channel {
    /// Maximum number of queued pieces (must be at least 1; the real
    /// runtime uses `sync_channel(64)` per destination).
    pub capacity: usize,
}

/// One operation of one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Op {
    /// Push piece `piece` (`bytes` bytes) into channel `chan`; blocks while
    /// the channel is full.
    Send {
        /// Target channel index.
        chan: usize,
        /// Logical piece identity (a duplicate id models a double send).
        piece: u32,
        /// Payload size.
        bytes: u64,
    },
    /// Pop one piece from channel `chan`; blocks while the channel is
    /// empty and some sender of the channel is still running. When every
    /// sender has finished and the queue is empty, the receive observes
    /// hangup and the thread stops (the `while let Ok(..) = rx.recv()`
    /// loop exit).
    Recv {
        /// Source channel index.
        chan: usize,
    },
}

impl Op {
    fn chan(self) -> usize {
        match self {
            Op::Send { chan, .. } | Op::Recv { chan } => chan,
        }
    }
}

/// One thread: a name (for witness traces) and its operation sequence.
#[derive(Debug, Clone, Serialize)]
pub struct Thread {
    /// Short name used in witness traces, e.g. `send:d0` / `asm:d5`.
    pub name: String,
    /// Operations, executed in order.
    pub ops: Vec<Op>,
}

/// A whole dataflow program: channels plus threads.
#[derive(Debug, Clone, Serialize)]
pub struct Program {
    /// The bounded channels.
    pub channels: Vec<Channel>,
    /// The threads.
    pub threads: Vec<Thread>,
}

/// Exploration bound: the checker stops (reporting `truncated`) after this
/// many executed transitions across all interleavings.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Bound {
    /// Maximum transitions to execute before giving up.
    pub max_transitions: usize,
}

impl Default for Bound {
    fn default() -> Self {
        Bound {
            max_transitions: 200_000,
        }
    }
}

/// What the exploration found.
#[derive(Debug, Clone, Serialize)]
pub struct ModelReport {
    /// Complete interleavings examined (terminal states reached).
    pub interleavings: usize,
    /// Total transitions executed.
    pub transitions: usize,
    /// True if the transition bound cut exploration short.
    pub truncated: bool,
    /// Property violations, each with a witness interleaving in the
    /// explanation. Deduplicated by rule + location.
    pub violations: Vec<Diagnostic>,
}

struct Explorer<'p> {
    program: &'p Program,
    bound: Bound,
    interleavings: usize,
    transitions: usize,
    truncated: bool,
    violations: Vec<Diagnostic>,
    /// Total sends of each piece id in the program text (path-independent:
    /// every op of every thread eventually runs unless blocked forever,
    /// and a blocked thread is a reported deadlock).
    sends_per_piece: BTreeMap<u32, usize>,
}

#[derive(Clone)]
struct State {
    /// Per-channel FIFO of (piece, bytes).
    queues: Vec<VecDeque<(u32, u64)>>,
    /// Per-thread program counter.
    pc: Vec<usize>,
    /// Threads that stopped early after observing hangup.
    stopped: Vec<bool>,
    /// Per-piece delivered count.
    delivered: BTreeMap<u32, usize>,
    /// Per-channel (sent, received) byte totals.
    bytes: Vec<(u64, u64)>,
    /// Executed transition names, for witness traces.
    trace: Vec<String>,
}

impl<'p> Explorer<'p> {
    fn thread_done(&self, st: &State, t: usize) -> bool {
        st.stopped[t] || st.pc[t] >= self.program.threads[t].ops.len()
    }

    /// True if every thread that still has a `Send` on `chan` ahead of its
    /// program counter is unable to ever reach it... conservatively: a
    /// channel is hung up when every thread containing a send on it has
    /// finished. (Matches the runtime, where each sender thread holds a
    /// clone of the channel's tx for its whole lifetime.)
    fn hung_up(&self, st: &State, chan: usize) -> bool {
        self.program.threads.iter().enumerate().all(|(t, th)| {
            self.thread_done(st, t)
                || !th
                    .ops
                    .iter()
                    .any(|o| matches!(o, Op::Send { chan: c, .. } if *c == chan))
        })
    }

    fn enabled(&self, st: &State, t: usize) -> bool {
        if self.thread_done(st, t) {
            return false;
        }
        match self.program.threads[t].ops[st.pc[t]] {
            Op::Send { chan, .. } => st.queues[chan].len() < self.program.channels[chan].capacity,
            Op::Recv { chan } => !st.queues[chan].is_empty() || self.hung_up(st, chan),
        }
    }

    /// Executes thread `t`'s next op on a copy of `st`.
    fn step(&mut self, st: &State, t: usize) -> State {
        let mut next = st.clone();
        let op = self.program.threads[t].ops[st.pc[t]];
        match op {
            Op::Send { chan, piece, bytes } => {
                next.queues[chan].push_back((piece, bytes));
                next.bytes[chan].0 += bytes;
                next.trace.push(format!(
                    "{}:send(c{chan},p{piece})",
                    self.program.threads[t].name
                ));
                next.pc[t] += 1;
            }
            Op::Recv { chan } => {
                if let Some((piece, bytes)) = next.queues[chan].pop_front() {
                    *next.delivered.entry(piece).or_insert(0) += 1;
                    next.bytes[chan].1 += bytes;
                    next.trace.push(format!(
                        "{}:recv(c{chan},p{piece})",
                        self.program.threads[t].name
                    ));
                    next.pc[t] += 1;
                } else {
                    // Hangup observed: the assembler loop exits.
                    next.trace
                        .push(format!("{}:hangup(c{chan})", self.program.threads[t].name));
                    next.stopped[t] = true;
                }
            }
        }
        self.transitions += 1;
        next
    }

    fn report(&mut self, rule: Rule, location: String, explanation: String) {
        if self
            .violations
            .iter()
            .any(|d| d.rule == rule && d.location == location)
        {
            return;
        }
        if self.violations.len() < 32 {
            self.violations
                .push(Diagnostic::error(rule, location, explanation));
        }
    }

    fn check_terminal(&mut self, st: &State) {
        self.interleavings += 1;
        let witness = || st.trace.join(" ; ");
        let pieces: Vec<(u32, usize)> =
            self.sends_per_piece.iter().map(|(&p, &s)| (p, s)).collect();
        for (piece, sent) in pieces {
            let got = st.delivered.get(&piece).copied().unwrap_or(0);
            if got > 1 || got > sent {
                self.report(
                    Rule::ModelDoubleDelivery,
                    format!("piece {piece}"),
                    format!("delivered {got} times (sent {sent}): {}", witness()),
                );
            } else if got < sent {
                self.report(
                    Rule::ModelLost,
                    format!("piece {piece}"),
                    format!("sent {sent} time(s) but delivered {got}: {}", witness()),
                );
            }
        }
        for (c, &(sent, recvd)) in st.bytes.iter().enumerate() {
            if sent != recvd {
                self.report(
                    Rule::ModelBytes,
                    format!("channel {c}"),
                    format!("{sent} bytes sent but {recvd} received: {}", witness()),
                );
            }
        }
    }

    fn check_deadlock(&mut self, st: &State) {
        let blocked: Vec<String> = (0..self.program.threads.len())
            .filter(|&t| !self.thread_done(st, t))
            .map(|t| {
                let th = &self.program.threads[t];
                let op = th.ops[st.pc[t]];
                let kind = match op {
                    Op::Send { .. } => "send",
                    Op::Recv { .. } => "recv",
                };
                format!("{} blocked in {kind} on c{}", th.name, op.chan())
            })
            .collect();
        self.report(
            Rule::ModelDeadlock,
            "program".to_string(),
            format!(
                "all unfinished threads block forever ({}): after {}",
                blocked.join(", "),
                st.trace.join(" ; ")
            ),
        );
    }

    /// DFS with sleep sets. `sleep` is a bitmask of threads whose next
    /// transition is provably covered by a sibling exploration.
    fn explore(&mut self, st: &State, sleep: u64) {
        if self.truncated {
            return;
        }
        if self.transitions >= self.bound.max_transitions {
            self.truncated = true;
            return;
        }
        let enabled: Vec<usize> = (0..self.program.threads.len())
            .filter(|&t| self.enabled(st, t))
            .collect();
        if enabled.is_empty() {
            if (0..self.program.threads.len()).all(|t| self.thread_done(st, t)) {
                self.check_terminal(st);
            } else {
                self.check_deadlock(st);
            }
            return;
        }
        let mut sleep = sleep;
        for &t in &enabled {
            if sleep & (1 << t) != 0 {
                continue;
            }
            let op = self.program.threads[t].ops[st.pc[t]];
            // Wake sleeping threads whose next op touches the same channel
            // (dependent transitions do not commute).
            let mut child_sleep = 0u64;
            for u in 0..self.program.threads.len() {
                if sleep & (1 << u) == 0 || self.thread_done(st, u) {
                    continue;
                }
                let other = self.program.threads[u].ops[st.pc[u]];
                if other.chan() != op.chan() {
                    child_sleep |= 1 << u;
                }
            }
            let next = self.step(st, t);
            self.explore(&next, child_sleep);
            if self.truncated {
                return;
            }
            sleep |= 1 << t;
        }
    }
}

/// Explores every interleaving of `program` up to `bound` and reports all
/// property violations found, each with a witness schedule.
///
/// # Panics
///
/// Panics if the program has more than 64 threads, a channel with zero
/// capacity, or an op referencing a channel that does not exist.
pub fn check(program: &Program, bound: Bound) -> ModelReport {
    assert!(
        program.threads.len() <= 64,
        "model checker supports at most 64 threads"
    );
    for (i, c) in program.channels.iter().enumerate() {
        assert!(c.capacity >= 1, "channel {i} must have capacity >= 1");
    }
    let mut sends_per_piece: BTreeMap<u32, usize> = BTreeMap::new();
    for th in &program.threads {
        for op in &th.ops {
            assert!(
                op.chan() < program.channels.len(),
                "op references unknown channel {}",
                op.chan()
            );
            if let Op::Send { piece, .. } = op {
                *sends_per_piece.entry(*piece).or_insert(0) += 1;
            }
        }
    }
    let mut ex = Explorer {
        program,
        bound,
        interleavings: 0,
        transitions: 0,
        truncated: false,
        violations: Vec::new(),
        sends_per_piece,
    };
    let init = State {
        queues: vec![VecDeque::new(); program.channels.len()],
        pc: vec![0; program.threads.len()],
        stopped: vec![false; program.threads.len()],
        delivered: BTreeMap::new(),
        bytes: vec![(0, 0); program.channels.len()],
        trace: Vec::new(),
    };
    ex.explore(&init, 0);
    record_model_transitions(ex.transitions as u64);
    crate::record_run("check.model", &ex.violations);
    ModelReport {
        interleavings: ex.interleavings,
        transitions: ex.transitions,
        truncated: ex.truncated,
        violations: ex.violations,
    }
}

/// Builds the dataflow program the threaded runtime would run for a plan:
/// one bounded channel per destination device, one thread per sender
/// device pushing its assigned units' pieces in plan order, and one
/// assembler thread per destination receiving until hangup.
///
/// Piece ids are the logical (unit, receiver) identity, so a plan that
/// schedules a unit twice yields a program the checker convicts of double
/// delivery.
pub fn program_from_plan(
    units: &[UnitTask],
    assignments: &[crate::verify::AssignmentView],
    channel_capacity: usize,
) -> Program {
    // Channel per destination device, in device order.
    let mut chan_of: BTreeMap<DeviceId, usize> = BTreeMap::new();
    for a in assignments {
        let Some(unit) = units.get(a.unit) else {
            continue;
        };
        for r in &unit.receivers {
            let next = chan_of.len();
            chan_of.entry(r.device).or_insert(next);
        }
    }
    // Piece id per (unit, receiver position).
    let piece_id = |unit: usize, r: usize| -> u32 { ((unit as u32) << 8) | (r as u32 & 0xff) };

    // Sender threads grouped by sender device, pieces in plan order.
    let mut per_sender: BTreeMap<DeviceId, Vec<Op>> = BTreeMap::new();
    let mut expected: BTreeMap<usize, usize> = BTreeMap::new();
    for a in assignments {
        let Some(unit) = units.get(a.unit) else {
            continue;
        };
        let ops = per_sender.entry(a.sender).or_default();
        for (ri, r) in unit.receivers.iter().enumerate() {
            let chan = chan_of[&r.device];
            ops.push(Op::Send {
                chan,
                piece: piece_id(a.unit, ri),
                bytes: r.needed.volume(),
            });
            *expected.entry(chan).or_insert(0) += 1;
        }
    }

    let mut threads: Vec<Thread> = per_sender
        .into_iter()
        .map(|(d, ops)| Thread {
            name: format!("send:{d}"),
            ops,
        })
        .collect();
    for (device, &chan) in &chan_of {
        let n = expected.get(&chan).copied().unwrap_or(0);
        threads.push(Thread {
            name: format!("asm:{device}"),
            // One extra recv to observe hangup, like the runtime's
            // `while let Ok(piece) = rx.recv()` loop.
            ops: vec![Op::Recv { chan }; n + 1],
        });
    }
    Program {
        channels: vec![
            Channel {
                capacity: channel_capacity
            };
            chan_of.len()
        ],
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::AssignmentView;
    use crossmesh_collectives::Strategy;
    use crossmesh_mesh::{Receiver, Tile};
    use crossmesh_netsim::HostId;

    fn send(chan: usize, piece: u32) -> Op {
        Op::Send {
            chan,
            piece,
            bytes: 8,
        }
    }

    #[test]
    fn clean_fan_in_program_verifies() {
        // Two senders fan into one assembler.
        let p = Program {
            channels: vec![Channel { capacity: 2 }],
            threads: vec![
                Thread {
                    name: "send:a".into(),
                    ops: vec![send(0, 0), send(0, 1)],
                },
                Thread {
                    name: "send:b".into(),
                    ops: vec![send(0, 2)],
                },
                Thread {
                    name: "asm".into(),
                    ops: vec![Op::Recv { chan: 0 }; 4],
                },
            ],
        };
        let r = check(&p, Bound::default());
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(!r.truncated);
        assert!(r.interleavings > 1, "multiple interleavings explored");
    }

    #[test]
    fn seeded_deadlock_interleaving_is_caught() {
        // Two threads flood each other's full channel and only then would
        // drain: every interleaving wedges with both blocked in send.
        let p = Program {
            channels: vec![Channel { capacity: 1 }, Channel { capacity: 1 }],
            threads: vec![
                Thread {
                    name: "t0".into(),
                    ops: vec![send(0, 0), send(0, 1), Op::Recv { chan: 1 }],
                },
                Thread {
                    name: "t1".into(),
                    ops: vec![send(1, 2), send(1, 3), Op::Recv { chan: 0 }],
                },
            ],
        };
        let r = check(&p, Bound::default());
        assert!(
            r.violations.iter().any(|d| d.rule == Rule::ModelDeadlock),
            "{:?}",
            r.violations
        );
        let dl = r
            .violations
            .iter()
            .find(|d| d.rule == Rule::ModelDeadlock)
            .expect("deadlock diagnostic");
        assert!(dl.explanation.contains("blocked in send"), "{dl}");
    }

    #[test]
    fn double_send_is_convicted_of_double_delivery() {
        let p = Program {
            channels: vec![Channel { capacity: 4 }],
            threads: vec![
                Thread {
                    name: "send:a".into(),
                    ops: vec![send(0, 7), send(0, 7)],
                },
                Thread {
                    name: "asm".into(),
                    ops: vec![Op::Recv { chan: 0 }; 3],
                },
            ],
        };
        let r = check(&p, Bound::default());
        assert!(
            r.violations
                .iter()
                .any(|d| d.rule == Rule::ModelDoubleDelivery),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn undrained_piece_is_reported_lost() {
        // The assembler exits after one recv; the second piece rots in the
        // queue on some path. (Queue non-empty => recv stays enabled, so
        // the loss shows as the assembler consuming 1 of 2 and stopping.)
        let p = Program {
            channels: vec![Channel { capacity: 2 }],
            threads: vec![
                Thread {
                    name: "send:a".into(),
                    ops: vec![send(0, 0), send(0, 1)],
                },
                Thread {
                    name: "asm".into(),
                    ops: vec![Op::Recv { chan: 0 }],
                },
            ],
        };
        let r = check(&p, Bound::default());
        assert!(
            r.violations.iter().any(|d| d.rule == Rule::ModelLost),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn truncation_reports_honestly() {
        let p = Program {
            channels: vec![Channel { capacity: 8 }],
            threads: (0..6)
                .map(|i| Thread {
                    name: format!("t{i}"),
                    ops: vec![send(0, i), send(0, 16 + i)],
                })
                .chain(std::iter::once(Thread {
                    name: "asm".into(),
                    ops: vec![Op::Recv { chan: 0 }; 13],
                }))
                .collect(),
        };
        let r = check(
            &p,
            Bound {
                max_transitions: 50,
            },
        );
        assert!(r.truncated);
    }

    #[test]
    fn plan_programs_mirror_the_runtime_shape() {
        let slice = Tile::new([0..2, 0..2]);
        let units = vec![UnitTask {
            index: 0,
            slice: slice.clone(),
            bytes: slice.volume(),
            senders: vec![(DeviceId(0), HostId(0))],
            receivers: vec![
                Receiver {
                    device: DeviceId(4),
                    host: HostId(1),
                    needed: Tile::new([0..2, 0..1]),
                },
                Receiver {
                    device: DeviceId(5),
                    host: HostId(1),
                    needed: Tile::new([0..2, 1..2]),
                },
            ],
        }];
        let a = AssignmentView {
            unit: 0,
            sender: DeviceId(0),
            sender_host: HostId(0),
            strategy: Strategy::SendRecv,
        };
        let p = program_from_plan(&units, std::slice::from_ref(&a), 2);
        assert_eq!(p.channels.len(), 2);
        assert_eq!(p.threads.len(), 3); // 1 sender + 2 assemblers
        let r = check(&p, Bound::default());
        assert!(r.violations.is_empty(), "{:?}", r.violations);

        // A duplicated assignment double-delivers every piece.
        let dup = vec![a.clone(), a];
        let p = program_from_plan(&units, &dup, 2);
        let r = check(&p, Bound::default());
        assert!(r
            .violations
            .iter()
            .any(|d| d.rule == Rule::ModelDoubleDelivery));
    }
}
