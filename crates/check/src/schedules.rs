//! Seeded schedule fuzzing: deterministic interleaving perturbation with
//! equivalence oracles re-run every round.
//!
//! [`model`](crate::model) exhaustively enumerates interleavings of tiny
//! programs; real workloads (the threads backend, the MoE dataplane, the
//! serve worker pool) are orders of magnitude beyond its transition
//! bound. This module covers them probabilistically instead: the
//! `crossmesh-hb` seam turns every lock, channel, and pool operation into
//! a preemption point, and [`sweep`] re-runs a workload under a range of
//! perturbation seeds. Each seed yields a different — but reproducible —
//! interleaving: the per-thread RNG is derived from `(seed, thread)`, so
//! a convicting seed replays.
//!
//! The workload closure owns its own arming (e.g.
//! [`race::run_defect`](crate::race::run_defect) /
//! [`race::run_clean`](crate::race::run_clean) arm the detector and the
//! fuzzer per call) and reports per-seed diagnostics plus an oracle
//! verdict; the sweep aggregates. Complementarity with DPOR in one
//! sentence: the model checker proves small programs under *all*
//! schedules, the fuzzer checks the real programs under *many*.

use crate::Diagnostic;

/// What one seed produced.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The perturbation seed this round ran under.
    pub seed: u64,
    /// Diagnostics the round surfaced (race findings, typically).
    pub diagnostics: Vec<Diagnostic>,
    /// `Some(reason)` when the byte-identical equivalence oracle failed.
    pub oracle_failure: Option<String>,
}

/// Aggregate of a seed sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Per-seed outcomes, in seed order.
    pub outcomes: Vec<SeedOutcome>,
}

impl SweepReport {
    /// Seeds that produced at least one diagnostic.
    pub fn convicting_seeds(&self) -> Vec<u64> {
        self.outcomes
            .iter()
            .filter(|o| !o.diagnostics.is_empty())
            .map(|o| o.seed)
            .collect()
    }

    /// Fraction of seeds that convicted (0.0 when no seeds ran).
    pub fn convicted_fraction(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.convicting_seeds().len() as f64 / self.outcomes.len() as f64
    }

    /// Seeds whose equivalence oracle failed.
    pub fn oracle_failures(&self) -> Vec<u64> {
        self.outcomes
            .iter()
            .filter(|o| o.oracle_failure.is_some())
            .map(|o| o.seed)
            .collect()
    }

    /// Total diagnostics across all seeds.
    pub fn total_findings(&self) -> usize {
        self.outcomes.iter().map(|o| o.diagnostics.len()).sum()
    }
}

/// Runs `workload` once per seed in `[base_seed, base_seed + seeds)` and
/// aggregates the outcomes. The closure receives the seed and returns the
/// round's diagnostics plus an oracle verdict; panics inside the workload
/// are caught and reported as oracle failures so one bad seed does not
/// hide the rest of the sweep.
pub fn sweep<F>(base_seed: u64, seeds: u64, mut workload: F) -> SweepReport
where
    F: FnMut(u64) -> (Vec<Diagnostic>, Option<String>),
{
    let mut report = SweepReport::default();
    for seed in base_seed..base_seed.saturating_add(seeds) {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| workload(seed)));
        let (diagnostics, oracle_failure) = match outcome {
            Ok(pair) => pair,
            Err(payload) => {
                let reason = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "workload panicked".to_string());
                (Vec::new(), Some(reason))
            }
        };
        report.outcomes.push(SeedOutcome {
            seed,
            diagnostics,
            oracle_failure,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::race::{run_clean, run_defect, Defect};

    #[test]
    fn sweep_visits_every_seed_in_order() {
        let mut seen = Vec::new();
        let report = sweep(5, 4, |seed| {
            seen.push(seed);
            (Vec::new(), None)
        });
        assert_eq!(seen, vec![5, 6, 7, 8]);
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(report.convicted_fraction(), 0.0);
        assert!(report.oracle_failures().is_empty());
    }

    #[test]
    fn panicking_rounds_surface_as_oracle_failures() {
        let report = sweep(0, 3, |seed| {
            if seed == 1 {
                panic!("oracle diverged");
            }
            (Vec::new(), None)
        });
        assert_eq!(report.oracle_failures(), vec![1]);
        assert!(report.outcomes[1]
            .oracle_failure
            .as_deref()
            .unwrap_or_default()
            .contains("oracle diverged"));
    }

    #[test]
    fn defect_sweep_convicts_every_seed() {
        let report = sweep(0, 8, |seed| {
            (run_defect(Defect::UnsyncBufferWrite, seed), None)
        });
        assert_eq!(report.convicted_fraction(), 1.0, "{report:?}");
        assert!(report.total_findings() >= 8);
    }

    #[test]
    fn clean_sweep_stays_silent() {
        let report = sweep(0, 4, |seed| (run_clean(4, seed), None));
        assert_eq!(report.convicting_seeds(), Vec::<u64>::new());
        assert!(report.oracle_failures().is_empty());
    }
}
