//! Determinism lint: a line-oriented source scanner enforcing the
//! workspace's determinism rules. Planner output must be byte-identical
//! across runs and thread counts, so the layers that compute it may not
//! consult hash-order collections, wall clocks, or unseeded randomness —
//! and the runtime's send/recv paths may not `unwrap()` (a poisoned
//! channel must surface as a transport error, not a panic).
//!
//! Three rules, each scoped to the directories where the invariant holds:
//!
//! | rule | scope | bans |
//! |---|---|---|
//! | `lint.hash-iteration` | `crates/core/src/planners/` | `HashMap`, `HashSet` |
//! | `lint.wall-clock` | core, collectives, mesh, netsim, pipeline | `Instant::now`, `SystemTime::now`, `thread_rng`, `from_entropy`, `rand::random` |
//! | `lint.unwrap` | `crates/runtime/src/` | `.unwrap()` |
//!
//! Lines inside `#[cfg(test)]` regions and comment lines are skipped.
//! Findings can be suppressed through an allowlist file (see
//! [`parse_allowlist`]); the canonical allowlist lives at
//! `crates/check/lint-allow.txt` and is enforced in CI via the
//! `crossmesh-lint` binary.

use crate::{record_lint_findings, Diagnostic, Rule};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories (workspace-relative) scanned for the wall-clock/RNG rule.
const DETERMINISTIC_SCOPES: &[&str] = &[
    "crates/core/src/",
    "crates/collectives/src/",
    "crates/mesh/src/",
    "crates/moe/src/",
    "crates/netsim/src/",
    "crates/pipeline/src/",
];

/// Directory scanned for the hash-iteration rule.
const PLANNER_SCOPE: &str = "crates/core/src/planners/";

/// Directory scanned for the unwrap rule.
const RUNTIME_SCOPE: &str = "crates/runtime/src/";

/// One allowlist entry: suppresses `rule` findings in files whose
/// workspace-relative path ends with `path_suffix`, on lines containing
/// `pattern`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id to suppress, e.g. `lint.unwrap`.
    pub rule: String,
    /// Path suffix the entry applies to.
    pub path_suffix: String,
    /// Substring the offending line must contain.
    pub pattern: String,
}

impl AllowEntry {
    fn matches(&self, rule: Rule, rel_path: &str, line: &str) -> bool {
        self.rule == rule.id()
            && rel_path.ends_with(&self.path_suffix)
            && line.contains(&self.pattern)
    }
}

/// Parses an allowlist document: one entry per line, `|`-separated fields
/// `rule | path-suffix | line-substring`; `#` starts a comment.
///
/// Malformed lines (fewer than three fields) are ignored rather than
/// fatal, so a stray comment cannot brick CI.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.splitn(3, '|').map(str::trim);
            Some(AllowEntry {
                rule: parts.next()?.to_string(),
                path_suffix: parts.next()?.to_string(),
                pattern: parts.next()?.to_string(),
            })
        })
        .collect()
}

fn in_scope(rel_path: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| rel_path.starts_with(s))
}

/// Lints one source file. `rel_path` is the workspace-relative path (used
/// both for rule scoping and in diagnostics); `content` is the file text.
///
/// Everything from the first `#[cfg(test)]` line onward is skipped — the
/// workspace convention keeps test modules at the end of each file — as
/// are comment-only lines (a doc comment may legitimately *mention*
/// `Instant::now`).
pub fn lint_source(rel_path: &str, content: &str, allow: &[AllowEntry]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if !rel_path.ends_with(".rs") {
        return diags;
    }
    let hash_scope = rel_path.starts_with(PLANNER_SCOPE);
    let clock_scope = in_scope(rel_path, DETERMINISTIC_SCOPES);
    let unwrap_scope = rel_path.starts_with(RUNTIME_SCOPE);
    if !(hash_scope || clock_scope || unwrap_scope) {
        return diags;
    }

    for (i, line) in content.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let lineno = i + 1;
        let mut push = |rule: Rule, what: &str, why: &str| {
            if allow.iter().any(|e| e.matches(rule, rel_path, line)) {
                return;
            }
            diags.push(Diagnostic::error(
                rule,
                format!("{rel_path}:{lineno}"),
                format!("{what}: {why}"),
            ));
        };
        if hash_scope {
            for token in ["HashMap", "HashSet"] {
                if line.contains(token) {
                    push(
                        Rule::LintHashIteration,
                        token,
                        "hash iteration order would leak into plans; use BTreeMap/BTreeSet",
                    );
                }
            }
        }
        if clock_scope {
            for token in [
                "Instant::now",
                "SystemTime::now",
                "thread_rng",
                "from_entropy",
                "rand::random",
            ] {
                if line.contains(token) {
                    push(
                        Rule::LintWallClock,
                        token,
                        "wall clock / unseeded RNG in a deterministic layer; thread seeds through the API",
                    );
                }
            }
        }
        if unwrap_scope && line.contains(".unwrap()") {
            push(
                Rule::LintUnwrap,
                ".unwrap()",
                "runtime send/recv paths must surface errors, not panic; use expect with a message or propagate",
            );
        }
    }
    diags
}

/// The outcome of a repository lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Files scanned (in-scope `.rs` files found under the root).
    pub files_scanned: usize,
    /// All findings, ordered by path then line.
    pub diagnostics: Vec<Diagnostic>,
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every in-scope source file under the workspace `root`, applying
/// the allowlist.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the source tree.
pub fn lint_repo(root: &Path, allow: &[AllowEntry]) -> io::Result<LintReport> {
    let mut scopes: Vec<&str> = DETERMINISTIC_SCOPES.to_vec();
    scopes.push(RUNTIME_SCOPE);
    let mut files = Vec::new();
    for scope in &scopes {
        let dir = root.join(scope);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    files.dedup();
    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = fs::read_to_string(path)?;
        files_scanned += 1;
        diagnostics.extend(lint_source(&rel, &content, allow));
    }
    record_lint_findings(diagnostics.len() as u64);
    Ok(LintReport {
        files_scanned,
        diagnostics,
    })
}

/// Loads and parses the allowlist at `path`; a missing file is an empty
/// allowlist.
///
/// # Errors
///
/// Propagates I/O errors other than `NotFound`.
pub fn load_allowlist(path: &Path) -> io::Result<Vec<AllowEntry>> {
    match fs::read_to_string(path) {
        Ok(text) => Ok(parse_allowlist(&text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banned_constructs_are_flagged_in_scope() {
        let src = "use std::collections::HashMap;\nlet m: HashMap<u32, u32> = HashMap::new();\n";
        let diags = lint_source("crates/core/src/planners/bad.rs", src, &[]);
        assert!(diags.iter().any(|d| d.rule == Rule::LintHashIteration));
        // Same content outside the planner scope: clean.
        assert!(lint_source("crates/models/src/gpt.rs", src, &[]).is_empty());
    }

    #[test]
    fn wall_clock_and_unwrap_rules_scope_correctly() {
        let clock = "let t0 = std::time::Instant::now();\n";
        assert!(lint_source("crates/core/src/plan.rs", clock, &[])
            .iter()
            .any(|d| d.rule == Rule::LintWallClock));
        // The runtime may use wall clocks (it measures real time)...
        assert!(lint_source("crates/runtime/src/backend.rs", clock, &[]).is_empty());
        // ...but may not unwrap.
        let unwrap = "let x = rx.recv().unwrap();\n";
        assert!(lint_source("crates/runtime/src/backend.rs", unwrap, &[])
            .iter()
            .any(|d| d.rule == Rule::LintUnwrap));
    }

    #[test]
    fn comments_and_test_modules_are_skipped() {
        let src = "// Instant::now is banned here\n/// docs: thread_rng\n#[cfg(test)]\nmod tests { fn f() { let _ = std::time::Instant::now(); } }\n";
        assert!(lint_source("crates/core/src/plan.rs", src, &[]).is_empty());
    }

    #[test]
    fn allowlist_suppresses_matching_findings_only() {
        let src = "let x = header.try_into().unwrap();\nlet y = rx.recv().unwrap();\n";
        let allow = parse_allowlist(
            "# suppress the infallible header parse\nlint.unwrap | backend.rs | try_into()\n",
        );
        let diags = lint_source("crates/runtime/src/backend.rs", src, &allow);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].explanation.contains(".unwrap()"));
        assert!(diags[0].location.ends_with(":2"));
    }

    #[test]
    fn allowlist_parser_ignores_junk() {
        let entries = parse_allowlist("# comment\n\nnot-enough-fields\na | b | c\n");
        assert_eq!(
            entries,
            vec![AllowEntry {
                rule: "a".into(),
                path_suffix: "b".into(),
                pattern: "c".into(),
            }]
        );
    }

    #[test]
    fn fixture_file_with_banned_constructs_is_caught() {
        let fixture = include_str!("../tests/fixtures/nondeterministic_planner.rs");
        let diags = lint_source(
            "crates/core/src/planners/nondeterministic_planner.rs",
            fixture,
            &[],
        );
        assert!(
            diags.iter().any(|d| d.rule == Rule::LintHashIteration),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.rule == Rule::LintWallClock));
    }

    #[test]
    fn the_workspace_itself_is_lint_clean() {
        // The crate sits at crates/check; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let allow = load_allowlist(&root.join("crates/check/lint-allow.txt")).expect("allowlist");
        let report = lint_repo(&root, &allow).expect("lint runs");
        assert!(
            report.files_scanned > 20,
            "scanned {}",
            report.files_scanned
        );
        assert!(
            report.diagnostics.is_empty(),
            "{}",
            crate::render_text(&report.diagnostics)
        );
    }
}
