//! Determinism lint: a line-oriented source scanner enforcing the
//! workspace's determinism rules. Planner output must be byte-identical
//! across runs and thread counts, so the layers that compute it may not
//! consult hash-order collections, wall clocks, or unseeded randomness —
//! and the runtime's send/recv paths may not `unwrap()` (a poisoned
//! channel must surface as a transport error, not a panic).
//!
//! Five rules, each scoped to the directories where the invariant holds:
//!
//! | rule | scope | bans |
//! |---|---|---|
//! | `lint.hash-iteration` | `crates/core/src/planners/` | `HashMap`, `HashSet` |
//! | `lint.wall-clock` | core, collectives, mesh, netsim, pipeline | `Instant::now`, `SystemTime::now`, `thread_rng`, `from_entropy`, `rand::random` |
//! | `lint.unwrap` | runtime, serve, `crates/obs/src/recorder.rs` | `.unwrap()` |
//! | `lint.atomic-ordering` | core, runtime, serve | `Ordering::Relaxed` outside allowlisted counter/fast-path sites |
//! | `lint.lock-order` | core, runtime, serve, obs | the same two locks taken in both orders (see [`LockOrderScanner`]) |
//!
//! Lines inside `#[cfg(test)]` regions and comment lines are skipped.
//! Findings can be suppressed through an allowlist file (see
//! [`parse_allowlist`]); the canonical allowlist lives at
//! `crates/check/lint-allow.txt` and is enforced in CI via the
//! `crossmesh-lint` binary.

use crate::{record_lint_findings, Diagnostic, Rule};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories (workspace-relative) scanned for the wall-clock/RNG rule.
const DETERMINISTIC_SCOPES: &[&str] = &[
    "crates/core/src/",
    "crates/collectives/src/",
    "crates/mesh/src/",
    "crates/moe/src/",
    "crates/netsim/src/",
    "crates/pipeline/src/",
];

/// Directory scanned for the hash-iteration rule.
const PLANNER_SCOPE: &str = "crates/core/src/planners/";

/// Directories scanned for the unwrap rule: the runtime's send/recv
/// paths, the serve daemon's request paths, and the flight recorder's
/// dump path (each runs on threads whose panic would strand a run).
const UNWRAP_SCOPES: &[&str] = &[
    "crates/runtime/src/",
    "crates/serve/src/",
    "crates/obs/src/recorder.rs",
];

/// Directories scanned for the atomic-ordering rule. `Relaxed` is only
/// sound for monotone counters and snapshot gauges; anything that
/// *publishes* data needs Acquire/Release, so every `Relaxed` outside the
/// allowlist is a finding.
const ATOMIC_SCOPES: &[&str] = &[
    "crates/core/src/",
    "crates/runtime/src/",
    "crates/serve/src/",
];

/// Directories scanned for the lock-order rule.
const LOCK_ORDER_SCOPES: &[&str] = &[
    "crates/core/src/",
    "crates/runtime/src/",
    "crates/serve/src/",
    "crates/obs/src/",
];

/// One allowlist entry: suppresses `rule` findings in files whose
/// workspace-relative path ends with `path_suffix`, on lines containing
/// `pattern`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id to suppress, e.g. `lint.unwrap`.
    pub rule: String,
    /// Path suffix the entry applies to.
    pub path_suffix: String,
    /// Substring the offending line must contain.
    pub pattern: String,
}

impl AllowEntry {
    fn matches(&self, rule: Rule, rel_path: &str, line: &str) -> bool {
        self.rule == rule.id()
            && rel_path.ends_with(&self.path_suffix)
            && line.contains(&self.pattern)
    }
}

/// Parses an allowlist document: one entry per line, `|`-separated fields
/// `rule | path-suffix | line-substring`; `#` starts a comment.
///
/// Malformed lines (fewer than three fields) are ignored rather than
/// fatal, so a stray comment cannot brick CI.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.splitn(3, '|').map(str::trim);
            Some(AllowEntry {
                rule: parts.next()?.to_string(),
                path_suffix: parts.next()?.to_string(),
                pattern: parts.next()?.to_string(),
            })
        })
        .collect()
}

fn in_scope(rel_path: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| rel_path.starts_with(s))
}

/// Lints one source file. `rel_path` is the workspace-relative path (used
/// both for rule scoping and in diagnostics); `content` is the file text.
///
/// Everything from the first `#[cfg(test)]` line onward is skipped — the
/// workspace convention keeps test modules at the end of each file — as
/// are comment-only lines (a doc comment may legitimately *mention*
/// `Instant::now`).
pub fn lint_source(rel_path: &str, content: &str, allow: &[AllowEntry]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if !rel_path.ends_with(".rs") {
        return diags;
    }
    let hash_scope = rel_path.starts_with(PLANNER_SCOPE);
    let clock_scope = in_scope(rel_path, DETERMINISTIC_SCOPES);
    let unwrap_scope = in_scope(rel_path, UNWRAP_SCOPES);
    let atomic_scope = in_scope(rel_path, ATOMIC_SCOPES);
    if !(hash_scope || clock_scope || unwrap_scope || atomic_scope) {
        return diags;
    }

    for (i, line) in content.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        let lineno = i + 1;
        let mut push = |rule: Rule, what: &str, why: &str| {
            if allow.iter().any(|e| e.matches(rule, rel_path, line)) {
                return;
            }
            diags.push(Diagnostic::error(
                rule,
                format!("{rel_path}:{lineno}"),
                format!("{what}: {why}"),
            ));
        };
        if hash_scope {
            for token in ["HashMap", "HashSet"] {
                if line.contains(token) {
                    push(
                        Rule::LintHashIteration,
                        token,
                        "hash iteration order would leak into plans; use BTreeMap/BTreeSet",
                    );
                }
            }
        }
        if clock_scope {
            for token in [
                "Instant::now",
                "SystemTime::now",
                "thread_rng",
                "from_entropy",
                "rand::random",
            ] {
                if line.contains(token) {
                    push(
                        Rule::LintWallClock,
                        token,
                        "wall clock / unseeded RNG in a deterministic layer; thread seeds through the API",
                    );
                }
            }
        }
        if unwrap_scope && line.contains(".unwrap()") {
            push(
                Rule::LintUnwrap,
                ".unwrap()",
                "runtime send/recv paths must surface errors, not panic; use expect with a message or propagate",
            );
        }
        if atomic_scope && line.contains("Ordering::Relaxed") {
            push(
                Rule::LintAtomicOrdering,
                "Ordering::Relaxed",
                "relaxed atomics publish nothing; allowlist the site if it is a pure counter/gauge, \
                 otherwise use Acquire/Release",
            );
        }
    }
    diags
}

/// Cross-file lock-acquisition-order scanner behind `lint.lock-order`.
///
/// Within each function it records, for every `X.lock()` that happens
/// textually after an earlier `Y.lock()`, the ordered receiver pair
/// `(Y, X)`. After the whole corpus is scanned, any pair observed in
/// *both* orders is an inversion — two call paths that could deadlock by
/// each holding one lock while waiting on the other — and every involved
/// site is reported. Receivers are normalized (index and call-argument
/// text stripped, so `self.shards[i].lock()` and `self.shards[j].lock()`
/// agree); the textual-order heuristic over-approximates guard lifetimes,
/// which is what the allowlist is for.
#[derive(Debug, Default)]
pub struct LockOrderScanner {
    /// Ordered pair `(first, second)` -> sites where it was observed,
    /// each as `(location, source line of the second lock)`.
    pairs: std::collections::BTreeMap<(String, String), Vec<(String, String)>>,
}

/// The normalized lock receiver ending at `end` (the index of `.lock()`),
/// or `None` when there is no plausible receiver expression.
fn lock_receiver(line: &str, end: usize) -> Option<String> {
    let bytes = line.as_bytes();
    let mut depth = 0u32;
    let mut start = end;
    while start > 0 {
        let c = bytes[start - 1] as char;
        let take = match c {
            ')' | ']' => {
                depth += 1;
                true
            }
            '(' | '[' => {
                if depth == 0 {
                    false
                } else {
                    depth -= 1;
                    true
                }
            }
            _ if depth > 0 => true,
            _ => c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == ':',
        };
        if !take {
            break;
        }
        start -= 1;
    }
    // Strip bracket contents so distinct keys hash to the same receiver.
    let mut out = String::new();
    let mut depth = 0u32;
    for c in line[start..end].chars() {
        match c {
            '(' | '[' => {
                if depth == 0 {
                    out.push(c);
                }
                depth += 1;
            }
            ')' | ']' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    out.push(c);
                }
            }
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    let out = out.trim_start_matches('.').to_string();
    if out.is_empty() || out == "self" {
        None
    } else {
        Some(out)
    }
}

impl LockOrderScanner {
    /// An empty scanner.
    pub fn new() -> LockOrderScanner {
        LockOrderScanner::default()
    }

    /// Scans one source file, accumulating ordered lock pairs. Test
    /// modules and comment lines are skipped like [`lint_source`].
    pub fn scan(&mut self, rel_path: &str, content: &str) {
        let mut held: Vec<(String, usize)> = Vec::new();
        for (i, line) in content.lines().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("#[cfg(test)]") {
                break;
            }
            if trimmed.starts_with("//") {
                continue;
            }
            // A new fn starts a fresh ordering context.
            if trimmed.starts_with("fn ")
                || trimmed.contains(" fn ")
                || trimmed.starts_with("pub fn ")
            {
                held.clear();
            }
            let mut from = 0;
            while let Some(at) = line[from..].find(".lock()") {
                let end = from + at;
                if let Some(recv) = lock_receiver(line, end) {
                    let lineno = i + 1;
                    for (prev, _) in &held {
                        if *prev != recv {
                            self.pairs
                                .entry((prev.clone(), recv.clone()))
                                .or_default()
                                .push((format!("{rel_path}:{lineno}"), line.to_string()));
                        }
                    }
                    held.push((recv, lineno));
                }
                from = end + ".lock()".len();
            }
        }
    }

    /// Diagnostics for every pair of locks observed in both orders, one
    /// per involved site (deduplicated, allowlist applied).
    pub fn findings(&self, allow: &[AllowEntry]) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for ((a, b), sites) in &self.pairs {
            let reverse = match self.pairs.get(&(b.clone(), a.clone())) {
                Some(r) if (a, b) <= (b, a) => r,
                _ => continue,
            };
            for (site, line) in sites.iter().chain(reverse) {
                let (rel_path, _) = site.rsplit_once(':').unwrap_or((site.as_str(), ""));
                if allow
                    .iter()
                    .any(|e| e.matches(Rule::LintLockOrder, rel_path, line))
                {
                    continue;
                }
                if !seen.insert(site.clone()) {
                    continue;
                }
                diags.push(Diagnostic::error(
                    Rule::LintLockOrder,
                    site.clone(),
                    format!(
                        "locks `{a}` and `{b}` are taken in both orders across the workspace; \
                         a consistent order (or a lock merge) is required to rule out deadlock"
                    ),
                ));
            }
        }
        diags.sort_by(|x, y| x.location.cmp(&y.location));
        diags
    }
}

/// The outcome of a repository lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Files scanned (in-scope `.rs` files found under the root).
    pub files_scanned: usize,
    /// All findings, ordered by path then line.
    pub diagnostics: Vec<Diagnostic>,
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every in-scope source file under the workspace `root`, applying
/// the allowlist.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the source tree.
pub fn lint_repo(root: &Path, allow: &[AllowEntry]) -> io::Result<LintReport> {
    let mut scopes: Vec<&str> = DETERMINISTIC_SCOPES.to_vec();
    scopes.extend(UNWRAP_SCOPES);
    scopes.extend(ATOMIC_SCOPES);
    scopes.extend(LOCK_ORDER_SCOPES);
    let mut files = Vec::new();
    for scope in &scopes {
        let path = root.join(scope);
        if path.is_dir() {
            collect_rs_files(&path, &mut files)?;
        } else if path.is_file() {
            files.push(path);
        }
    }
    files.sort();
    files.dedup();
    let mut diagnostics = Vec::new();
    let mut lock_order = LockOrderScanner::new();
    let mut files_scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = fs::read_to_string(path)?;
        files_scanned += 1;
        diagnostics.extend(lint_source(&rel, &content, allow));
        if in_scope(&rel, LOCK_ORDER_SCOPES) {
            lock_order.scan(&rel, &content);
        }
    }
    diagnostics.extend(lock_order.findings(allow));
    record_lint_findings(diagnostics.len() as u64);
    Ok(LintReport {
        files_scanned,
        diagnostics,
    })
}

/// Loads and parses the allowlist at `path`; a missing file is an empty
/// allowlist.
///
/// # Errors
///
/// Propagates I/O errors other than `NotFound`.
pub fn load_allowlist(path: &Path) -> io::Result<Vec<AllowEntry>> {
    match fs::read_to_string(path) {
        Ok(text) => Ok(parse_allowlist(&text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banned_constructs_are_flagged_in_scope() {
        let src = "use std::collections::HashMap;\nlet m: HashMap<u32, u32> = HashMap::new();\n";
        let diags = lint_source("crates/core/src/planners/bad.rs", src, &[]);
        assert!(diags.iter().any(|d| d.rule == Rule::LintHashIteration));
        // Same content outside the planner scope: clean.
        assert!(lint_source("crates/models/src/gpt.rs", src, &[]).is_empty());
    }

    #[test]
    fn wall_clock_and_unwrap_rules_scope_correctly() {
        let clock = "let t0 = std::time::Instant::now();\n";
        assert!(lint_source("crates/core/src/plan.rs", clock, &[])
            .iter()
            .any(|d| d.rule == Rule::LintWallClock));
        // The runtime may use wall clocks (it measures real time)...
        assert!(lint_source("crates/runtime/src/backend.rs", clock, &[]).is_empty());
        // ...but may not unwrap.
        let unwrap = "let x = rx.recv().unwrap();\n";
        assert!(lint_source("crates/runtime/src/backend.rs", unwrap, &[])
            .iter()
            .any(|d| d.rule == Rule::LintUnwrap));
    }

    #[test]
    fn relaxed_atomics_are_flagged_unless_allowlisted() {
        let src = "self.flag.store(true, Ordering::Relaxed);\nself.hits.fetch_add(1, Ordering::Relaxed);\n";
        let diags = lint_source("crates/serve/src/server.rs", src, &[]);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == Rule::LintAtomicOrdering));
        // Allowlisting the counter leaves only the flag publication.
        let allow = parse_allowlist(
            "lint.atomic-ordering | server.rs | hits.fetch_add(1, Ordering::Relaxed)\n",
        );
        let diags = lint_source("crates/serve/src/server.rs", src, &allow);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].explanation.contains("Ordering::Relaxed"));
        // Out of scope (obs is Relaxed-by-design): clean.
        assert!(lint_source("crates/obs/src/metrics.rs", src, &[]).is_empty());
    }

    #[test]
    fn inverted_lock_orders_convict_every_site() {
        let mut scanner = LockOrderScanner::new();
        scanner.scan(
            "crates/serve/src/server.rs",
            "fn a(&self) {\n let s = self.dispatch.lock();\n let t = self.samples.lock();\n}\n",
        );
        scanner.scan(
            "crates/serve/src/other.rs",
            "fn b(&self) {\n let t = self.samples.lock();\n let s = self.dispatch.lock();\n}\n",
        );
        let diags = scanner.findings(&[]);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == Rule::LintLockOrder));
        assert!(diags.iter().any(|d| d.location.ends_with("server.rs:3")));
        assert!(diags.iter().any(|d| d.location.ends_with("other.rs:3")));
    }

    #[test]
    fn consistent_lock_order_is_clean_and_indexes_normalize() {
        let mut scanner = LockOrderScanner::new();
        // Same textual order in both functions; index arguments differ
        // but normalize to one receiver, so no self-pair is recorded.
        scanner.scan(
            "crates/core/src/cache.rs",
            "fn a(&self) {\n let g = self.shards[i].lock();\n let h = self.meta.lock();\n}\n\
             fn b(&self) {\n let g = self.shards[j + 1].lock();\n let h = self.meta.lock();\n}\n",
        );
        assert!(scanner.findings(&[]).is_empty());
        // A fn boundary resets the held set: locks in different functions
        // never pair.
        let mut reset = LockOrderScanner::new();
        reset.scan(
            "crates/core/src/cache.rs",
            "fn a(&self) {\n let g = self.x.lock();\n}\nfn b(&self) {\n let h = self.y.lock();\n}\n\
             fn c(&self) {\n let h = self.y.lock();\n let g = self.x.lock();\n}\n",
        );
        assert!(reset.findings(&[]).is_empty());
    }

    #[test]
    fn lock_receiver_extraction_handles_calls_and_indexes() {
        let line = "        let mut ring = self.shards[shard_index()].lock();";
        let at = line.find(".lock()").unwrap();
        assert_eq!(lock_receiver(line, at).as_deref(), Some("self.shards[]"));
        let line = "            let mut stream = stream.lock();";
        let at = line.find(".lock()").unwrap();
        assert_eq!(lock_receiver(line, at).as_deref(), Some("stream"));
        let line = "        let st = self.shard(key).lock();";
        let at = line.find(".lock()").unwrap();
        assert_eq!(lock_receiver(line, at).as_deref(), Some("self.shard()"));
    }

    #[test]
    fn unwrap_scope_covers_serve_and_the_recorder() {
        let unwrap = "let x = rx.recv().unwrap();\n";
        for path in [
            "crates/serve/src/server.rs",
            "crates/obs/src/recorder.rs",
            "crates/runtime/src/backend.rs",
        ] {
            assert!(
                lint_source(path, unwrap, &[])
                    .iter()
                    .any(|d| d.rule == Rule::LintUnwrap),
                "{path} should be in the unwrap scope"
            );
        }
        // The rest of obs stays out of scope.
        assert!(lint_source("crates/obs/src/metrics.rs", unwrap, &[]).is_empty());
    }

    #[test]
    fn comments_and_test_modules_are_skipped() {
        let src = "// Instant::now is banned here\n/// docs: thread_rng\n#[cfg(test)]\nmod tests { fn f() { let _ = std::time::Instant::now(); } }\n";
        assert!(lint_source("crates/core/src/plan.rs", src, &[]).is_empty());
    }

    #[test]
    fn allowlist_suppresses_matching_findings_only() {
        let src = "let x = header.try_into().unwrap();\nlet y = rx.recv().unwrap();\n";
        let allow = parse_allowlist(
            "# suppress the infallible header parse\nlint.unwrap | backend.rs | try_into()\n",
        );
        let diags = lint_source("crates/runtime/src/backend.rs", src, &allow);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].explanation.contains(".unwrap()"));
        assert!(diags[0].location.ends_with(":2"));
    }

    #[test]
    fn allowlist_parser_ignores_junk() {
        let entries = parse_allowlist("# comment\n\nnot-enough-fields\na | b | c\n");
        assert_eq!(
            entries,
            vec![AllowEntry {
                rule: "a".into(),
                path_suffix: "b".into(),
                pattern: "c".into(),
            }]
        );
    }

    #[test]
    fn fixture_file_with_banned_constructs_is_caught() {
        let fixture = include_str!("../tests/fixtures/nondeterministic_planner.rs");
        let diags = lint_source(
            "crates/core/src/planners/nondeterministic_planner.rs",
            fixture,
            &[],
        );
        assert!(
            diags.iter().any(|d| d.rule == Rule::LintHashIteration),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.rule == Rule::LintWallClock));
    }

    #[test]
    fn the_workspace_itself_is_lint_clean() {
        // The crate sits at crates/check; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let allow = load_allowlist(&root.join("crates/check/lint-allow.txt")).expect("allowlist");
        let report = lint_repo(&root, &allow).expect("lint runs");
        assert!(
            report.files_scanned > 20,
            "scanned {}",
            report.files_scanned
        );
        assert!(
            report.diagnostics.is_empty(),
            "{}",
            crate::render_text(&report.diagnostics)
        );
    }
}
