//! Happens-before data-race detection for the concurrent core.
//!
//! A FastTrack-style vector-clock engine (Flanagan & Freund, PLDI 2009)
//! fed by the `crossmesh-hb` instrumentation seam: the vendored sync
//! shims emit lock acquire/release edges, `shims/rayon` emits per-job
//! fork/join edges, and the runtime emits channel send/recv and ack
//! edges. Shared state is *declared*, not discovered: the dataplane
//! buffers, `PlanCache` shards, admission queues, and the flight-recorder
//! ring each mark their reads and writes as access points. Two accesses
//! to the same access point with at least one write and no
//! happens-before path between them convict as a `race.*`
//! [`Diagnostic`] carrying both stack-side source locations.
//!
//! Epoch compression keeps the common case O(1): each variable's last
//! write is a single `(thread, clock)` epoch, and reads stay an epoch
//! until two unordered readers force inflation to a full read vector
//! (deflated again by the next ordered write). Full vector-clock joins
//! happen only at synchronization edges.
//!
//! The engine is a [`hb::Sink`]: install it with [`hb::install`] (via
//! [`run_defect`] / [`run_clean`] or the `crossmesh-race` bin), run the
//! workload, and drain findings. It is deliberately built on `std::sync`
//! only — a sink that acquired an instrumented lock would re-enter the
//! seam from inside itself.

use crate::{Diagnostic, Rule};
use crossmesh_hb as hb;
use parking_lot::Mutex as PlMutex;
use rayon::ThreadPoolBuilder;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A `(thread, clock)` pair: the compressed representation of "the last
/// access was by `tid` at its local time `clock`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Epoch {
    tid: u32,
    clock: u32,
}

/// A dense vector clock indexed by the seam's thread ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Vc(Vec<u32>);

impl Vc {
    fn get(&self, tid: u32) -> u32 {
        self.0.get(tid as usize).copied().unwrap_or(0)
    }

    fn set(&mut self, tid: u32, clock: u32) {
        let idx = tid as usize;
        if self.0.len() <= idx {
            self.0.resize(idx + 1, 0);
        }
        self.0[idx] = clock;
    }

    fn tick(&mut self, tid: u32) {
        let next = self.get(tid) + 1;
        self.set(tid, next);
    }

    fn join(&mut self, other: &Vc) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// `epoch ⊑ self`: the access at `epoch` happens-before everything
    /// the owner of `self` does from now on.
    fn covers(&self, epoch: Epoch) -> bool {
        epoch.clock <= self.get(epoch.tid)
    }
}

/// Last-reader state for one variable: an epoch while reads are totally
/// ordered, a full per-thread map once they are not.
#[derive(Debug, Clone)]
enum ReadState {
    Epoch(Option<(Epoch, hb::Site)>),
    Share(HashMap<u32, (u32, hb::Site)>),
}

impl Default for ReadState {
    fn default() -> Self {
        ReadState::Epoch(None)
    }
}

/// FastTrack per-variable state.
#[derive(Debug, Clone, Default)]
struct VarState {
    write: Option<(Epoch, hb::Site)>,
    read: ReadState,
}

/// One racy pair, pre-diagnostic.
#[derive(Debug, Clone)]
struct Finding {
    rule: Rule,
    object: u64,
    prior_thread: u32,
    prior_site: hb::Site,
    thread: u32,
    site: hb::Site,
}

#[derive(Debug, Default)]
struct Engine {
    /// Per-thread clocks, indexed by seam thread id.
    threads: HashMap<u32, Vc>,
    /// Per-synchronization-object clocks (locks, channels, job edges).
    objects: HashMap<u64, Vc>,
    /// Per-access-point FastTrack state.
    vars: HashMap<u64, VarState>,
    findings: Vec<Finding>,
    /// Dedupe key: one finding per (object, rule, site pair).
    reported: HashSet<(u64, &'static str, hb::Site, hb::Site)>,
    events: u64,
}

impl Engine {
    fn thread_vc(&mut self, tid: u32) -> &mut Vc {
        self.threads.entry(tid).or_insert_with(|| {
            let mut vc = Vc::default();
            vc.set(tid, 1);
            vc
        })
    }

    fn report(&mut self, rule: Rule, prior: (u32, hb::Site), ev: &hb::Event) {
        let key = (ev.object, rule.id(), prior.1, ev.site);
        if self.reported.insert(key) {
            self.findings.push(Finding {
                rule,
                object: ev.object,
                prior_thread: prior.0,
                prior_site: prior.1,
                thread: ev.thread,
                site: ev.site,
            });
        }
    }

    fn handle(&mut self, ev: hb::Event) {
        self.events += 1;
        match ev.kind {
            hb::EventKind::Acquire => {
                if let Some(obj) = self.objects.get(&ev.object).cloned() {
                    self.thread_vc(ev.thread).join(&obj);
                }
            }
            hb::EventKind::Release => {
                // Join (not overwrite) into the object clock: a proper
                // mutex release always covers the previous one (join ==
                // overwrite there), but ack-counter edges accumulate
                // releases from *several* completers before the dispatcher
                // acquires — overwriting would drop all but the last.
                let vc = self.thread_vc(ev.thread).clone();
                self.objects
                    .entry(ev.object)
                    .and_modify(|obj| obj.join(&vc))
                    .or_insert(vc);
                self.thread_vc(ev.thread).tick(ev.thread);
            }
            hb::EventKind::Read => self.on_read(&ev),
            hb::EventKind::Write => self.on_write(&ev),
        }
    }

    fn on_read(&mut self, ev: &hb::Event) {
        let vc = self.thread_vc(ev.thread).clone();
        let epoch = Epoch {
            tid: ev.thread,
            clock: vc.get(ev.thread),
        };
        let var = self.vars.entry(ev.object).or_default();
        // Same-epoch fast path: this thread already read here since its
        // last synchronization.
        if let ReadState::Epoch(Some((r, _))) = var.read {
            if r == epoch {
                return;
            }
        }
        let write = var.write;
        let race = match write {
            Some((w, ws)) if !vc.covers(w) => Some((w.tid, ws)),
            _ => None,
        };
        match &mut var.read {
            ReadState::Epoch(slot @ None) => *slot = Some((epoch, ev.site)),
            ReadState::Epoch(slot @ Some(_)) => {
                let (prev, prev_site) = slot.expect("checked Some");
                if vc.covers(prev) {
                    *slot = Some((epoch, ev.site));
                } else {
                    // Two unordered readers: inflate to the read-share
                    // map. Concurrent reads are not a race; the map
                    // exists so a later write can be checked against
                    // every one of them.
                    let mut share = HashMap::new();
                    share.insert(prev.tid, (prev.clock, prev_site));
                    share.insert(epoch.tid, (epoch.clock, ev.site));
                    var.read = ReadState::Share(share);
                }
            }
            ReadState::Share(share) => {
                share.insert(epoch.tid, (epoch.clock, ev.site));
            }
        }
        if let Some(prior) = race {
            self.report(Rule::RaceWriteRead, prior, ev);
        }
    }

    fn on_write(&mut self, ev: &hb::Event) {
        let vc = self.thread_vc(ev.thread).clone();
        let epoch = Epoch {
            tid: ev.thread,
            clock: vc.get(ev.thread),
        };
        let var = self.vars.entry(ev.object).or_default();
        if var.write.map(|(w, _)| w == epoch).unwrap_or(false) {
            return;
        }
        let mut races: Vec<(Rule, (u32, hb::Site))> = Vec::new();
        if let Some((w, ws)) = var.write {
            if !vc.covers(w) {
                races.push((Rule::RaceWriteWrite, (w.tid, ws)));
            }
        }
        match &var.read {
            ReadState::Epoch(Some((r, rs))) => {
                if !vc.covers(*r) {
                    races.push((Rule::RaceReadWrite, (r.tid, *rs)));
                }
            }
            ReadState::Share(share) => {
                for (&tid, &(clock, rs)) in share {
                    if !vc.covers(Epoch { tid, clock }) {
                        races.push((Rule::RaceReadWrite, (tid, rs)));
                    }
                }
            }
            ReadState::Epoch(None) => {}
        }
        var.write = Some((epoch, ev.site));
        // Deflate the read share once this write covers every reader:
        // later same-thread accesses go back to the O(1) epoch path.
        if races.is_empty() {
            var.read = ReadState::Epoch(None);
        }
        for (rule, prior) in races {
            self.report(rule, prior, ev);
        }
    }
}

/// The vector-clock race detector; see the module docs. One instance per
/// armed section — create, [`hb::install`], run the workload, then
/// [`drain_diagnostics`](RaceDetector::drain_diagnostics).
#[derive(Debug, Default)]
pub struct RaceDetector {
    inner: Mutex<Engine>,
}

impl RaceDetector {
    /// A fresh detector with no recorded state.
    pub fn new() -> RaceDetector {
        RaceDetector::default()
    }

    /// Events processed so far (sync edges + declared accesses).
    pub fn events(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .events
    }

    /// Takes the accumulated racy pairs as `race.*` diagnostics (clearing
    /// them), recording the count in the `check.race_findings` metric.
    /// Each diagnostic's location is the convicting access; the
    /// explanation carries both stack-side locations and threads.
    pub fn drain_diagnostics(&self) -> Vec<Diagnostic> {
        let findings: Vec<Finding> = {
            let mut engine = self
                .inner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            engine.reported.clear();
            engine.findings.drain(..).collect()
        };
        let diags: Vec<Diagnostic> = findings
            .iter()
            .map(|f| {
                let (prior_kind, kind) = match f.rule {
                    Rule::RaceWriteWrite => ("write", "write"),
                    Rule::RaceReadWrite => ("read", "write"),
                    _ => ("write", "read"),
                };
                Diagnostic::error(
                    f.rule,
                    f.site.to_string(),
                    format!(
                        "{kind} at {} (thread {}) races {prior_kind} at {} (thread {}): \
                         no happens-before edge orders them on shared object {:#x}",
                        f.site, f.thread, f.prior_site, f.prior_thread, f.object
                    ),
                )
            })
            .collect();
        crate::record_race_findings(diags.len() as u64);
        crate::record_run("check.race", &diags);
        diags
    }
}

impl hb::Sink for RaceDetector {
    fn event(&self, ev: hb::Event) {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .handle(ev);
    }
}

/// The seeded race defects the self-test injects. Each is a small
/// concurrent program with a deliberate synchronization hole patterned on
/// a real failure mode of the runtime; the detector must convict every
/// one under every schedule seed, because the *absence of an edge* — not
/// the observed interleaving — is what convicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defect {
    /// Two senders write the same destination buffer with no lock and no
    /// channel edge: the classic overlapping-assignment corruption.
    UnsyncBufferWrite,
    /// Both sides release the shard lock *before* touching the shared
    /// state it was supposed to protect: the guard was dropped early.
    LockDroppedEarly,
    /// A producer hands a buffer to a consumer through a bare flag
    /// instead of an ack frame: data crosses threads with no edge.
    MissingAckEdge,
}

impl Defect {
    /// Every defect class, in self-test order.
    pub fn all() -> [Defect; 3] {
        [
            Defect::UnsyncBufferWrite,
            Defect::LockDroppedEarly,
            Defect::MissingAckEdge,
        ]
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Defect::UnsyncBufferWrite => "unsync-buffer-write",
            Defect::LockDroppedEarly => "lock-dropped-early",
            Defect::MissingAckEdge => "missing-ack-edge",
        }
    }

    /// The rules under which this defect may convict. Write/write holes
    /// always convict as [`Rule::RaceWriteWrite`]; a read/write hole
    /// convicts as read-write or write-read depending on which access the
    /// engine observes second.
    pub fn expected_rules(self) -> &'static [Rule] {
        match self {
            Defect::UnsyncBufferWrite => &[Rule::RaceWriteWrite],
            Defect::LockDroppedEarly => &[Rule::RaceReadWrite, Rule::RaceWriteRead],
            Defect::MissingAckEdge => &[Rule::RaceWriteRead],
        }
    }

    fn execute(self) {
        match self {
            Defect::UnsyncBufferWrite => {
                let buffer = Arc::new(AtomicU64::new(0));
                let point = hb::fresh_id();
                let b1 = buffer.clone();
                let writer_a = std::thread::spawn(move || {
                    hb::preempt();
                    hb::write(point);
                    b1.fetch_add(0x1111, Ordering::SeqCst);
                });
                let b2 = buffer;
                let writer_b = std::thread::spawn(move || {
                    hb::preempt();
                    hb::write(point);
                    b2.fetch_add(0x2222, Ordering::SeqCst);
                });
                let _ = writer_a.join();
                let _ = writer_b.join();
            }
            Defect::LockDroppedEarly => {
                let shard = Arc::new(PlMutex::new(0u64));
                let point = hb::fresh_id();
                let s1 = shard.clone();
                let writer = std::thread::spawn(move || {
                    let guard = s1.lock();
                    drop(guard); // the bug: the shard lock no longer covers the write
                    hb::write(point);
                });
                let s2 = shard;
                let reader = std::thread::spawn(move || {
                    let guard = s2.lock();
                    drop(guard); // same hole on the read side
                    hb::read(point);
                });
                let _ = writer.join();
                let _ = reader.join();
            }
            Defect::MissingAckEdge => {
                let slot = Arc::new(AtomicU64::new(0));
                let ready = Arc::new(AtomicBool::new(false));
                let point = hb::fresh_id();
                let (s1, r1) = (slot.clone(), ready.clone());
                let producer = std::thread::spawn(move || {
                    hb::write(point);
                    s1.store(0xF00D, Ordering::Relaxed);
                    // The bug: publication through a relaxed flag, where
                    // the runtime would send an ack frame (an hb edge).
                    r1.store(true, Ordering::Relaxed);
                });
                let consumer = std::thread::spawn(move || {
                    while !ready.load(Ordering::Relaxed) {
                        std::hint::spin_loop();
                    }
                    hb::read(point);
                    let _ = slot.load(Ordering::Relaxed);
                });
                let _ = producer.join();
                let _ = consumer.join();
            }
        }
    }
}

/// Runs one seeded defect with the detector and schedule perturbation
/// armed, returning its diagnostics. Serializes on [`hb::test_lock`]
/// internally — callers must not hold it.
pub fn run_defect(defect: Defect, seed: u64) -> Vec<Diagnostic> {
    let _serial = hb::test_lock();
    let detector = Arc::new(RaceDetector::new());
    let _armed = hb::install(detector.clone());
    let _fuzzing = hb::fuzz(seed);
    defect.execute();
    detector.drain_diagnostics()
}

/// Runs the clean concurrent workload — rayon scope fan-out and a
/// `par_iter` map over a `width`-thread pool, all shared state behind an
/// instrumented `parking_lot` mutex — with the detector and perturbation
/// armed. Returns the diagnostics (which must be empty: every access is
/// ordered by a lock or fork/join edge) after asserting the byte-identical
/// equivalence oracle. Serializes on [`hb::test_lock`] internally.
pub fn run_clean(width: usize, seed: u64) -> Vec<Diagnostic> {
    let _serial = hb::test_lock();
    let detector = Arc::new(RaceDetector::new());
    let _armed = hb::install(detector.clone());
    let _fuzzing = hb::fuzz(seed);

    let pool = ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .expect("pool builds");
    let tally = PlMutex::new(Vec::<u64>::new());
    let point = hb::fresh_id();
    pool.install(|| {
        rayon::scope(|s| {
            for i in 0..24u64 {
                let tally = &tally;
                s.spawn(move |_| {
                    let mut guard = tally.lock();
                    hb::write(point);
                    guard.push(i * i);
                });
            }
        });
        // The scope's join edges order every job's write before this read.
        let mut guard = tally.lock();
        hb::read(point);
        guard.sort_unstable();

        use rayon::prelude::*;
        let items: Vec<u64> = (0..48).collect();
        let squared: Vec<u64> = items.par_iter().map(|&x| x * x).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(
            squared, expected,
            "par_iter oracle diverged at width {width} seed {seed}"
        );
        let expected_tally: Vec<u64> = (0..24u64).map(|i| i * i).collect();
        assert_eq!(
            *guard, expected_tally,
            "scope tally oracle diverged at width {width} seed {seed}"
        );
    });
    drop(pool);
    detector.drain_diagnostics()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(line: u32) -> hb::Site {
        hb::Site {
            file: "synthetic.rs",
            line,
        }
    }

    fn ev(kind: hb::EventKind, thread: u32, object: u64, line: u32) -> hb::Event {
        hb::Event {
            kind,
            thread,
            object,
            site: site(line),
        }
    }

    fn feed(events: &[hb::Event]) -> Vec<Diagnostic> {
        use crossmesh_hb::Sink;
        let det = RaceDetector::new();
        for e in events {
            det.event(*e);
        }
        det.drain_diagnostics()
    }

    const LOCK: u64 = 10;
    const X: u64 = 99;

    #[test]
    fn lock_protected_accesses_are_clean() {
        use hb::EventKind::{Acquire, Read, Release, Write};
        let diags = feed(&[
            ev(Acquire, 0, LOCK, 1),
            ev(Write, 0, X, 2),
            ev(Release, 0, LOCK, 3),
            ev(Acquire, 1, LOCK, 4),
            ev(Read, 1, X, 5),
            ev(Write, 1, X, 6),
            ev(Release, 1, LOCK, 7),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unordered_writes_convict_once() {
        use hb::EventKind::Write;
        let diags = feed(&[ev(Write, 0, X, 1), ev(Write, 1, X, 2), ev(Write, 1, X, 2)]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::RaceWriteWrite);
        assert!(diags[0].explanation.contains("synthetic.rs:1"));
        assert!(diags[0].explanation.contains("synthetic.rs:2"));
    }

    #[test]
    fn unordered_write_then_read_convicts_write_read() {
        use hb::EventKind::{Read, Write};
        let diags = feed(&[ev(Write, 0, X, 1), ev(Read, 1, X, 2)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::RaceWriteRead);
    }

    #[test]
    fn read_share_then_unordered_write_convicts_every_reader() {
        use hb::EventKind::{Read, Write};
        let diags = feed(&[ev(Read, 0, X, 1), ev(Read, 1, X, 2), ev(Write, 2, X, 3)]);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == Rule::RaceReadWrite));
    }

    #[test]
    fn fork_edge_orders_spawner_before_job() {
        use hb::EventKind::{Acquire, Release, Write};
        const EDGE: u64 = 77;
        let diags = feed(&[
            ev(Write, 0, X, 1),
            ev(Release, 0, EDGE, 2),
            ev(Acquire, 1, EDGE, 3),
            ev(Write, 1, X, 4),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn multi_completer_counter_chain_accumulates_releases() {
        use hb::EventKind::{Acquire, Read, Release, Write};
        // Two completers each release the pending-counter edge after
        // writing their half; the dispatcher acquires once the count hits
        // zero. Join semantics must keep *both* releases in the edge.
        const PENDING: u64 = 55;
        let diags = feed(&[
            ev(Write, 0, X, 1),
            ev(Release, 0, PENDING, 2),
            ev(Write, 1, X + 1, 3),
            ev(Release, 1, PENDING, 4),
            ev(Acquire, 2, PENDING, 5),
            ev(Read, 2, X, 6),
            ev(Read, 2, X + 1, 7),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn condvar_handoff_through_lock_is_clean() {
        use hb::EventKind::{Acquire, Read, Release, Write};
        // Producer writes under the lock; consumer's wait re-acquires it.
        let diags = feed(&[
            ev(Acquire, 1, LOCK, 1), // consumer takes the lock first
            ev(Release, 1, LOCK, 2), // ... and releases it inside wait_for
            ev(Acquire, 0, LOCK, 3),
            ev(Write, 0, X, 4),
            ev(Release, 0, LOCK, 5),
            ev(Acquire, 1, LOCK, 6), // wait_for returns holding the lock
            ev(Read, 1, X, 7),
            ev(Release, 1, LOCK, 8),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn every_defect_convicts_under_a_matching_rule() {
        for defect in Defect::all() {
            for seed in [0, 1, 7] {
                let diags = run_defect(defect, seed);
                assert!(
                    !diags.is_empty(),
                    "defect {} seed {seed} did not convict",
                    defect.name()
                );
                assert!(
                    diags
                        .iter()
                        .any(|d| defect.expected_rules().contains(&d.rule)),
                    "defect {} seed {seed} convicted under the wrong rule: {diags:?}",
                    defect.name()
                );
            }
        }
    }

    #[test]
    fn clean_workload_is_silent_at_small_widths() {
        for width in [1, 4] {
            let diags = run_clean(width, 3);
            assert!(diags.is_empty(), "width {width}: {diags:?}");
        }
    }

    #[test]
    fn detector_counts_events() {
        use crossmesh_hb::Sink;
        let det = RaceDetector::new();
        det.event(ev(hb::EventKind::Write, 0, X, 1));
        assert_eq!(det.events(), 1);
    }
}
