//! # crossmesh-check
//!
//! Static analysis for the crossmesh workspace: everything here runs
//! *without executing a plan on any backend*. Three passes:
//!
//! * [`verify`] — the plan/schedule **verifier**: a typed diagnostic engine
//!   over resharding plans (coverage, byte conservation, sender-exclusion
//!   compliance, broadcast-ring well-formedness, link-capacity sanity
//!   against the cluster topology) and pipeline schedules (operation-shape
//!   invariants, forward/backward ordering, backward weight-delay ordering,
//!   and a cross-stage dependency-graph topological check that reports
//!   deadlock cycles with a minimal witness).
//! * [`model`] — a **bounded model checker** for the threaded runtime's
//!   dataflow programs: a deterministic scheduler harness that exhaustively
//!   explores interleavings (with sleep-set pruning, DPOR-style, up to a
//!   configurable transition bound) of small sender/assembler programs over
//!   bounded channels, asserting no deadlock, no double delivery, and
//!   byte-exact delivery.
//! * [`lint`] — a **determinism lint**: a source scanner enforcing the
//!   repo's determinism rules (no `HashMap`/`HashSet` in the planners, no
//!   wall clocks or unseeded RNG in the deterministic layers, no
//!   `unwrap()` in runtime send/recv paths, consistent multi-lock
//!   acquisition order, no stray `Ordering::Relaxed`), with an allowlist
//!   file.
//! * [`race`] — a **happens-before race detector**: a FastTrack-style
//!   vector-clock engine (epoch-compressed) fed by the `crossmesh-hb`
//!   instrumentation seam in the vendored sync shims; unordered
//!   conflicting accesses to declared shared-state access points surface
//!   as `race.*` diagnostics carrying both stack-side locations.
//! * [`schedules`] — a **seeded schedule fuzzer**: a preemption-point
//!   perturbation sweep that re-runs a workload (and its byte-identical
//!   equivalence oracle) across deterministic seeds, optionally with the
//!   race detector armed — covering interleavings far beyond [`model`]'s
//!   exhaustive bound.
//!
//! Every pass reports through one currency, [`Diagnostic`]: a stable
//! [`Rule`] id, a [`Severity`], a human-locatable `location`, and an
//! explanation. Callers decide policy (the planner wiring refuses to
//! execute a plan with `Error` diagnostics; CI fails on any lint finding).
//!
//! This crate sits *below* `crossmesh-core` in the dependency graph — it
//! sees plans as slices of [`verify::AssignmentView`]s and schedules as
//! slices of [`verify::ScheduleOp`]s — so the planner, the plan cache, and
//! the fault-recovery loop can all call the verifier without a cycle.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lint;
pub mod model;
pub mod race;
pub mod schedules;
pub mod verify;

use crossmesh_mesh::Tile;
use crossmesh_netsim::DeviceId;
use crossmesh_obs as obs;
use serde::Serialize;
use std::fmt;
use std::sync::OnceLock;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Severity {
    /// Suspicious but executable; reported, never blocks execution.
    Warning,
    /// The artifact is wrong: executing it would lose, duplicate, or
    /// corrupt data, or wedge the runtime. Execution wiring refuses it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable identifiers for every rule the three passes can fire. Tests and
/// CI match on [`Rule::id`]; the enum exists so adding a rule is a
/// compile-visible event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// A unit task has no assignment: its slice would never be sent.
    CoverageMissing,
    /// A unit task is assigned more than once: its tiles would be sent
    /// (and written) twice.
    CoverageDuplicate,
    /// An assignment references a unit index outside the task.
    CoverageUnknownUnit,
    /// Two receivers' needed tiles overlap on one destination device: some
    /// destination region would be written by two different unit tasks.
    CoverageOverlap,
    /// A unit's byte count disagrees with its slice volume, or a receiver
    /// needs data outside the slice: byte conservation is broken.
    CoverageBytes,
    /// The chosen sender is not in the unit's replica set.
    SenderNotReplica,
    /// The chosen sender is excluded (crashed host / failed device).
    SenderExcluded,
    /// A broadcast ring hop sends a chunk from a device to itself.
    RingSelfLoop,
    /// A broadcast ring visits a device twice: the ring has a cycle.
    RingCycle,
    /// Broadcast ring hops are not in the canonical order (sender first,
    /// then receivers sorted host-contiguously), so host-consecutive
    /// pipelining is broken.
    RingOrder,
    /// The chunk count does not match the closed form `K` used by the cost
    /// model `T^bc = t + A·t/K`.
    RingChunks,
    /// A plan references a device the cluster does not contain.
    CapacityUnknownDevice,
    /// An assignment's claimed host disagrees with the cluster topology.
    CapacityHostMismatch,
    /// A link bandwidth is non-positive or non-finite.
    CapacityBandwidth,
    /// The cluster's fabric is flat with unbounded bisection capacity, so
    /// every fabric-contention check is vacuously true.
    CapacityUnbounded,
    /// An expected all-to-all (src device → dst device) shard is never
    /// delivered by any scheduled unit task.
    A2aMissingPair,
    /// An all-to-all (src device → dst device) shard is delivered more
    /// than once, or a delivery has no matching expected pair.
    A2aDuplicatePair,
    /// The bytes delivered for an all-to-all pair disagree with the
    /// expected shard size.
    A2aBytes,
    /// A multi-rail spray overloads a physical rail beyond its fair share
    /// (plus one chunk), e.g. by declaring more logical rails than the
    /// fabric has.
    A2aRailCapacity,
    /// A pipeline stage's operation multiset is malformed (wrong counts of
    /// forward / backward-act / backward-weight ops).
    ScheduleShape,
    /// Forward (or backward-act) microbatches run out of ascending order
    /// within a stage.
    ScheduleForwardOrder,
    /// Within a stage, a microbatch's forward, backward-act, and
    /// backward-weight ops are not in causal order.
    ScheduleMicrobatchOrder,
    /// Backward weight-delay ordering violated: weight updates overtake
    /// each other or run before their activation-gradient half.
    ScheduleWeightOrder,
    /// The cross-stage dependency graph has a cycle: the schedule
    /// deadlocks. The explanation carries a minimal witness cycle.
    ScheduleDeadlock,
    /// The model checker found an interleaving in which unfinished threads
    /// all block forever.
    ModelDeadlock,
    /// The model checker found an interleaving delivering one piece twice.
    ModelDoubleDelivery,
    /// The model checker found an interleaving where received bytes
    /// disagree with sent bytes on some channel.
    ModelBytes,
    /// The model checker found an interleaving where a sent piece is never
    /// delivered.
    ModelLost,
    /// `HashMap`/`HashSet` in planner sources: iteration order would leak
    /// into plans.
    LintHashIteration,
    /// Wall clock or unseeded RNG in a deterministic layer.
    LintWallClock,
    /// `unwrap()` in a runtime send/recv path.
    LintUnwrap,
    /// Two locks acquired in opposite orders in different places: a
    /// lock-order inversion that can deadlock under contention.
    LintLockOrder,
    /// `Ordering::Relaxed` on an atomic outside the allowlisted
    /// counter/fast-path sites: relaxed atomics carry no happens-before
    /// edge, so data published around them is unsynchronized.
    LintAtomicOrdering,
    /// Two threads wrote the same shared state with no happens-before
    /// edge between the writes.
    RaceWriteWrite,
    /// A read raced a later write to the same shared state (no
    /// happens-before edge from the read to the write).
    RaceReadWrite,
    /// A write raced a later read of the same shared state (no
    /// happens-before edge from the write to the read).
    RaceWriteRead,
}

impl Rule {
    /// The stable dotted identifier, e.g. `plan.coverage.missing`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::CoverageMissing => "plan.coverage.missing",
            Rule::CoverageDuplicate => "plan.coverage.duplicate",
            Rule::CoverageUnknownUnit => "plan.coverage.unknown-unit",
            Rule::CoverageOverlap => "plan.coverage.overlap",
            Rule::CoverageBytes => "plan.coverage.bytes",
            Rule::SenderNotReplica => "plan.sender.not-replica",
            Rule::SenderExcluded => "plan.sender.excluded",
            Rule::RingSelfLoop => "plan.ring.self-loop",
            Rule::RingCycle => "plan.ring.cycle",
            Rule::RingOrder => "plan.ring.order",
            Rule::RingChunks => "plan.ring.chunks",
            Rule::CapacityUnknownDevice => "plan.capacity.unknown-device",
            Rule::CapacityHostMismatch => "plan.capacity.host-mismatch",
            Rule::CapacityBandwidth => "plan.capacity.bandwidth",
            Rule::CapacityUnbounded => "plan.capacity.unbounded",
            Rule::A2aMissingPair => "plan.a2a.missing-pair",
            Rule::A2aDuplicatePair => "plan.a2a.duplicate-pair",
            Rule::A2aBytes => "plan.a2a.bytes",
            Rule::A2aRailCapacity => "plan.a2a.rail-capacity",
            Rule::ScheduleShape => "sched.shape",
            Rule::ScheduleForwardOrder => "sched.forward-order",
            Rule::ScheduleMicrobatchOrder => "sched.microbatch-order",
            Rule::ScheduleWeightOrder => "sched.weight-order",
            Rule::ScheduleDeadlock => "sched.deadlock",
            Rule::ModelDeadlock => "model.deadlock",
            Rule::ModelDoubleDelivery => "model.double-delivery",
            Rule::ModelBytes => "model.bytes",
            Rule::ModelLost => "model.lost",
            Rule::LintHashIteration => "lint.hash-iteration",
            Rule::LintWallClock => "lint.wall-clock",
            Rule::LintUnwrap => "lint.unwrap",
            Rule::LintLockOrder => "lint.lock-order",
            Rule::LintAtomicOrdering => "lint.atomic-ordering",
            Rule::RaceWriteWrite => "race.write-write",
            Rule::RaceReadWrite => "race.read-write",
            Rule::RaceWriteRead => "race.write-read",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

// Serialized as the dotted id (not the variant name): `--format json`
// consumers and CI match on the same identifier the text renderer prints.
impl serde::Serialize for Rule {
    fn serialize(&self) -> serde_json::Value {
        serde_json::Value::Str(self.id().to_string())
    }
}

/// First point of divergence between delivered and expected data: which
/// device, which tile, and where inside it.
///
/// Shared currency between the static verifier (overlapping destination
/// writes report the overlap region) and the dynamic data plane
/// (`crossmesh-core`'s `verify_destination` reports the first corrupted or
/// uncovered element through this same type).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TileDiff {
    /// The destination device the divergence is on.
    pub device: DeviceId,
    /// The tile region in question (the checked destination tile, or the
    /// overlap region for a double write).
    pub tile: Tile,
    /// Row-major element offset of the first divergent element *within*
    /// `tile`.
    pub offset: u64,
    /// Linear index of that element in the full tensor.
    pub linear_index: u64,
    /// The value the element should hold, if known.
    pub expected: Option<u64>,
    /// The value the element actually holds (`None` = never written).
    pub actual: Option<u64>,
}

impl fmt::Display for TileDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device {} tile {} offset {} (linear {})",
            self.device, self.tile, self.offset, self.linear_index
        )?;
        match (self.expected, self.actual) {
            (Some(e), Some(a)) => write!(f, ": expected {e}, got {a}"),
            (Some(e), None) => write!(f, ": expected {e}, never written"),
            (None, Some(a)) => write!(f, ": unexpectedly holds {a}"),
            (None, None) => Ok(()),
        }
    }
}

/// One finding from any pass.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// How bad it is.
    pub severity: Severity,
    /// Where: `unit 3 sender d5`, `stage 1 op 7`, `path.rs:42`, ...
    pub location: String,
    /// Why, in one sentence, with the offending values inlined.
    pub explanation: String,
    /// Structured first-divergence payload, when the rule concerns data
    /// placement (coverage overlaps, data-plane mismatches).
    pub diff: Option<TileDiff>,
}

impl Diagnostic {
    /// An `Error`-severity finding.
    pub fn error(rule: Rule, location: impl Into<String>, explanation: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            location: location.into(),
            explanation: explanation.into(),
            diff: None,
        }
    }

    /// A `Warning`-severity finding.
    pub fn warning(
        rule: Rule,
        location: impl Into<String>,
        explanation: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Warning,
            location: location.into(),
            explanation: explanation.into(),
            diff: None,
        }
    }

    /// Attaches a structured diff.
    #[must_use]
    pub fn with_diff(mut self, diff: TileDiff) -> Self {
        self.diff = Some(diff);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity,
            self.rule.id(),
            self.location,
            self.explanation
        )
    }
}

/// True if any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Renders diagnostics one per line (empty string when clean).
pub fn render_text(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(Diagnostic::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

struct CheckMetrics {
    runs: obs::Counter,
    diagnostics: obs::Counter,
    errors: obs::Counter,
    model_transitions: obs::Counter,
    lint_findings: obs::Counter,
    race_findings: obs::Counter,
}

fn check_metrics() -> &'static CheckMetrics {
    static METRICS: OnceLock<CheckMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let m = obs::metrics();
        CheckMetrics {
            runs: m.counter("check.runs"),
            diagnostics: m.counter("check.diagnostics"),
            errors: m.counter("check.errors"),
            model_transitions: m.counter("check.model_transitions"),
            lint_findings: m.counter("check.lint_findings"),
            race_findings: m.counter("check.race_findings"),
        }
    })
}

/// Records one verifier run and its findings in the `check.*` metrics, and
/// emits a warn event per error diagnostic when a collector is installed.
pub(crate) fn record_run(target: &'static str, diags: &[Diagnostic]) {
    let m = check_metrics();
    m.runs.inc();
    m.diagnostics.add(diags.len() as u64);
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count() as u64;
    m.errors.add(errors);
    if errors > 0 && obs::enabled() {
        for d in diags.iter().filter(|d| d.severity == Severity::Error) {
            obs::event(
                obs::Level::Warn,
                target,
                "diagnostic",
                &[
                    obs::Field::str("rule", d.rule.id()),
                    obs::Field::str("location", d.location.clone()),
                    obs::Field::str("explanation", d.explanation.clone()),
                ],
            );
        }
    }
}

pub(crate) fn record_model_transitions(n: u64) {
    check_metrics().model_transitions.add(n);
}

pub(crate) fn record_lint_findings(n: u64) {
    check_metrics().lint_findings.add(n);
}

pub(crate) fn record_race_findings(n: u64) {
    check_metrics().race_findings.add(n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_dotted() {
        let rules = [
            Rule::CoverageMissing,
            Rule::CoverageDuplicate,
            Rule::CoverageUnknownUnit,
            Rule::CoverageOverlap,
            Rule::CoverageBytes,
            Rule::SenderNotReplica,
            Rule::SenderExcluded,
            Rule::RingSelfLoop,
            Rule::RingCycle,
            Rule::RingOrder,
            Rule::RingChunks,
            Rule::CapacityUnknownDevice,
            Rule::CapacityHostMismatch,
            Rule::CapacityBandwidth,
            Rule::CapacityUnbounded,
            Rule::A2aMissingPair,
            Rule::A2aDuplicatePair,
            Rule::A2aBytes,
            Rule::A2aRailCapacity,
            Rule::ScheduleShape,
            Rule::ScheduleForwardOrder,
            Rule::ScheduleMicrobatchOrder,
            Rule::ScheduleWeightOrder,
            Rule::ScheduleDeadlock,
            Rule::ModelDeadlock,
            Rule::ModelDoubleDelivery,
            Rule::ModelBytes,
            Rule::ModelLost,
            Rule::LintHashIteration,
            Rule::LintWallClock,
            Rule::LintUnwrap,
            Rule::LintLockOrder,
            Rule::LintAtomicOrdering,
            Rule::RaceWriteWrite,
            Rule::RaceReadWrite,
            Rule::RaceWriteRead,
        ];
        let mut ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate rule id");
        for id in ids {
            assert!(id.contains('.'), "rule id {id} is not dotted");
        }
    }

    #[test]
    fn diagnostics_render_and_sort_by_severity() {
        let d = Diagnostic::error(Rule::CoverageMissing, "unit 3", "never sent");
        assert_eq!(
            d.to_string(),
            "error [plan.coverage.missing] unit 3: never sent"
        );
        assert!(Severity::Warning < Severity::Error);
        assert!(has_errors(std::slice::from_ref(&d)));
        assert!(!has_errors(&[Diagnostic::warning(
            Rule::RingChunks,
            "u0",
            "odd"
        )]));
        assert_eq!(render_text(&[]), "");
        assert!(render_text(&[d]).contains("plan.coverage.missing"));
    }

    #[test]
    fn tile_diff_displays_expectations() {
        let diff = TileDiff {
            device: DeviceId(4),
            tile: Tile::new([0..2, 0..2]),
            offset: 1,
            linear_index: 5,
            expected: Some(5),
            actual: Some(9),
        };
        let s = diff.to_string();
        assert!(s.contains("device d4"), "{s}");
        assert!(s.contains("expected 5, got 9"), "{s}");
    }
}
