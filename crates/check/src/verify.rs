//! Plan and schedule verifier: proves static invariants of a resharding
//! plan (coverage, byte conservation, sender legality, ring
//! well-formedness, topology sanity) and of a pipeline schedule (operation
//! shape, ordering, cross-stage deadlock freedom) without executing
//! anything.
//!
//! The verifier deliberately does *not* consume `crossmesh-core` types:
//! `core::Plan::new` panics on malformed input, which is the right contract
//! for planner output but useless for checking a plan deserialized from a
//! file. [`AssignmentView`] is the raw, unvalidated shape — the CLI `check`
//! subcommand feeds it straight from JSON, and `crossmesh-core` converts
//! its own `Assignment`s into it before every execution.

use crate::{record_run, Diagnostic, Rule, TileDiff};
use crossmesh_collectives::Strategy;
use crossmesh_mesh::{Tile, UnitTask};
use crossmesh_netsim::{ClusterSpec, DeviceId, HostId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The raw shape of one plan entry: which replica sends unit `unit`, with
/// which strategy. Mirrors `crossmesh-core`'s `Assignment` field for field
/// (and deserializes from the same JSON), but carries no validity promise.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssignmentView {
    /// Index of the unit task this entry schedules.
    pub unit: usize,
    /// The chosen sender device.
    pub sender: DeviceId,
    /// Host owning `sender`.
    pub sender_host: HostId,
    /// Communication strategy the unit is lowered with.
    pub strategy: Strategy,
}

/// Verifies a plan against its task: every rule in the `plan.*` catalogue.
///
/// * `units`, `shape`, `elem_bytes` describe the resharding task;
/// * `assignments` is the plan, in schedule order;
/// * `cluster`, when given, enables the `plan.capacity.*` topology rules;
/// * `excluded` is the sender-exclusion predicate (crashed hosts / failed
///   devices); pass `|_, _| false` when nothing is excluded.
///
/// Returns every finding, order-deterministic: coverage rules first (by
/// unit index), then per-assignment rules in plan order. An empty vector
/// means the plan is safe to lower and execute.
pub fn verify_plan(
    units: &[UnitTask],
    shape: &[u64],
    elem_bytes: u64,
    assignments: &[AssignmentView],
    cluster: Option<&ClusterSpec>,
    excluded: &dyn Fn(DeviceId, HostId) -> bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Coverage: each unit scheduled exactly once.
    let mut times_assigned = vec![0usize; units.len()];
    for (pos, a) in assignments.iter().enumerate() {
        match times_assigned.get_mut(a.unit) {
            Some(n) => *n += 1,
            None => diags.push(Diagnostic::error(
                Rule::CoverageUnknownUnit,
                format!("assignment {pos}"),
                format!(
                    "references unit {} but the task has only {} units",
                    a.unit,
                    units.len()
                ),
            )),
        }
    }
    for (u, &n) in times_assigned.iter().enumerate() {
        if n == 0 {
            diags.push(Diagnostic::error(
                Rule::CoverageMissing,
                format!("unit {u}"),
                format!(
                    "never scheduled: slice {} would not reach its {} receiver(s)",
                    units[u].slice,
                    units[u].receivers.len()
                ),
            ));
        } else if n > 1 {
            diags.push(Diagnostic::error(
                Rule::CoverageDuplicate,
                format!("unit {u}"),
                format!("scheduled {n} times: its destination tiles would be written {n} times"),
            ));
        }
    }

    // Byte conservation per unit, and destination write-once across units.
    // Only units actually scheduled contribute destination writes; a unit
    // scheduled twice is already reported above, so the overlap scan uses
    // each unit at most once.
    for (u, unit) in units.iter().enumerate() {
        let expect = unit.slice.volume() * elem_bytes;
        if unit.bytes != expect {
            diags.push(Diagnostic::error(
                Rule::CoverageBytes,
                format!("unit {u}"),
                format!(
                    "claims {} bytes but slice {} holds {} elements x {} bytes = {}",
                    unit.bytes,
                    unit.slice,
                    unit.slice.volume(),
                    elem_bytes,
                    expect
                ),
            ));
        }
        for r in &unit.receivers {
            if r.needed.is_empty() || !unit.slice.contains(&r.needed) {
                diags.push(Diagnostic::error(
                    Rule::CoverageBytes,
                    format!("unit {u} receiver {}", r.device),
                    format!(
                        "needs tile {} which is not a non-empty sub-tile of slice {}",
                        r.needed, unit.slice
                    ),
                ));
            }
        }
    }
    diags.extend(destination_overlaps(units, shape, &times_assigned));

    // Per-assignment rules, in plan order.
    for (pos, a) in assignments.iter().enumerate() {
        let Some(unit) = units.get(a.unit) else {
            continue; // reported as CoverageUnknownUnit above
        };
        let loc = format!("assignment {pos} (unit {})", a.unit);
        if !unit.senders.contains(&(a.sender, a.sender_host)) {
            diags.push(Diagnostic::error(
                Rule::SenderNotReplica,
                loc.clone(),
                format!(
                    "sender {} on {} does not hold a replica of slice {}",
                    a.sender, a.sender_host, unit.slice
                ),
            ));
        }
        if excluded(a.sender, a.sender_host) {
            diags.push(Diagnostic::error(
                Rule::SenderExcluded,
                loc.clone(),
                format!(
                    "sender {} on {} is excluded (crashed host or failed device)",
                    a.sender, a.sender_host
                ),
            ));
        }
        if let Some(ring) = ring_spec(unit, a) {
            let declared = match a.strategy {
                Strategy::Broadcast { chunks } => chunks,
                _ => ring.chunks,
            };
            diags.extend(verify_ring(unit, a.unit, &ring, a.sender_host, declared));
        }
        if let Some(c) = cluster {
            diags.extend(capacity_rules(unit, a, pos, c));
        }
    }
    if let Some(c) = cluster {
        diags.extend(bandwidth_rules(c));
        if c.fabric().is_unbounded() {
            diags.push(Diagnostic::warning(
                Rule::CapacityUnbounded,
                "cluster fabric".to_string(),
                format!(
                    "fabric {} has unbounded bisection capacity: fabric-contention checks are vacuously true (set an explicit FabricModel to bound them)",
                    c.fabric()
                ),
            ));
        }
    }

    record_run("check.verify", &diags);
    diags
}

/// One expected all-to-all delivery: `bytes` of one expert shard from
/// `src_device` to `dst_device`. The expected pair set is the routing
/// matrix of an MoE dispatch/combine; [`verify_a2a`] proves a plan
/// realizes it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct A2aPairView {
    /// The device the shard originates on.
    pub src_device: DeviceId,
    /// Host owning `src_device`.
    pub src_host: HostId,
    /// The expert device the shard must land on.
    pub dst_device: DeviceId,
    /// Host owning `dst_device`.
    pub dst_host: HostId,
    /// Shard size in bytes.
    pub bytes: u64,
}

/// Verifies an all-to-all plan against its expected pair set (the
/// `plan.a2a.*` rules):
///
/// * every expected (src → dst) shard is delivered by exactly one
///   scheduled unit task, with exactly its expected bytes;
/// * no delivery happens outside the expected pair set;
/// * when `cluster` models a rail-optimized fabric, every
///   [`Strategy::MultiRail`] assignment's greedy spray keeps each
///   *physical* rail within its fair share plus one chunk (declaring more
///   logical rails than the fabric has folds several logical rails onto
///   one NIC and fires this rule).
///
/// Run [`verify_plan`] first for the generic coverage/sender rules; this
/// pass adds only the all-to-all-specific findings.
pub fn verify_a2a(
    pairs: &[A2aPairView],
    units: &[UnitTask],
    elem_bytes: u64,
    assignments: &[AssignmentView],
    cluster: Option<&ClusterSpec>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Deliveries the plan performs: (src, dst) -> (times, bytes).
    let mut delivered: BTreeMap<(DeviceId, DeviceId), (usize, u64)> = BTreeMap::new();
    for a in assignments {
        let Some(unit) = units.get(a.unit) else {
            continue; // verify_plan reports the unknown unit
        };
        for r in &unit.receivers {
            let e = delivered.entry((a.sender, r.device)).or_insert((0, 0));
            e.0 += 1;
            e.1 += r.needed.volume() * elem_bytes;
        }
    }

    let mut expected: BTreeMap<(DeviceId, DeviceId), u64> = BTreeMap::new();
    for p in pairs {
        *expected.entry((p.src_device, p.dst_device)).or_insert(0) += p.bytes;
    }

    for (&(src, dst), &want) in &expected {
        match delivered.get(&(src, dst)) {
            None => diags.push(Diagnostic::error(
                Rule::A2aMissingPair,
                format!("pair {src}->{dst}"),
                format!("expert shard of {want} bytes is never delivered"),
            )),
            Some(&(times, got)) => {
                if times > 1 {
                    diags.push(Diagnostic::error(
                        Rule::A2aDuplicatePair,
                        format!("pair {src}->{dst}"),
                        format!("shard delivered by {times} unit tasks: destination would be written {times} times"),
                    ));
                }
                if got != want {
                    diags.push(Diagnostic::error(
                        Rule::A2aBytes,
                        format!("pair {src}->{dst}"),
                        format!("delivers {got} bytes but the routing expects {want}"),
                    ));
                }
            }
        }
    }
    for (&(src, dst), &(_, got)) in &delivered {
        if !expected.contains_key(&(src, dst)) {
            diags.push(Diagnostic::error(
                Rule::A2aDuplicatePair,
                format!("pair {src}->{dst}"),
                format!("delivers {got} bytes for a pair the routing never produced"),
            ));
        }
    }

    // Rail capacity: fold each multi-rail spray's logical rails onto the
    // fabric's physical rails and bound every physical rail by the fair
    // share plus one chunk (the greedy's own invariant on matching rails).
    if let Some(c) = cluster {
        if let Some(fabric_rails) = c.fabric().rails() {
            let fr = fabric_rails.max(1) as usize;
            for (pos, a) in assignments.iter().enumerate() {
                let Some(unit) = units.get(a.unit) else {
                    continue;
                };
                let Strategy::MultiRail { rails, chunks } = a.strategy else {
                    continue;
                };
                let spray =
                    crossmesh_collectives::multi_rail_spray(unit, a.sender_host, rails, chunks);
                let mut physical = vec![0.0f64; fr];
                for (l, &b) in spray.rail_bytes.iter().enumerate() {
                    physical[l % fr] += b;
                }
                let total: f64 = physical.iter().sum();
                let cap = total / fr as f64 + spray.max_chunk_bytes + 1e-9;
                for (p, &b) in physical.iter().enumerate() {
                    if b > cap {
                        diags.push(Diagnostic::error(
                            Rule::A2aRailCapacity,
                            format!("assignment {pos} (unit {}) rail {p}", a.unit),
                            format!(
                                "spray puts {b:.0} bytes on physical rail {p} but its fair share of {total:.0} bytes over {fr} rails (plus one {:.0}-byte chunk) is {cap:.0}: strategy declares {rails} logical rails on a {fr}-rail fabric",
                                spray.max_chunk_bytes
                            ),
                        ));
                    }
                }
            }
        }
    }

    record_run("check.a2a", &diags);
    diags
}

/// Finds destination tiles written by more than one scheduled unit task:
/// for each destination device, every pair of needed tiles from distinct
/// units must be disjoint. Reports the overlap region as a [`TileDiff`].
fn destination_overlaps(
    units: &[UnitTask],
    shape: &[u64],
    times_assigned: &[usize],
) -> Vec<Diagnostic> {
    let mut per_device: BTreeMap<DeviceId, Vec<(usize, &Tile)>> = BTreeMap::new();
    for (u, unit) in units.iter().enumerate() {
        if times_assigned.get(u).copied().unwrap_or(0) == 0 {
            continue;
        }
        for r in &unit.receivers {
            per_device.entry(r.device).or_default().push((u, &r.needed));
        }
    }
    let mut diags = Vec::new();
    for (device, tiles) in per_device {
        for (i, &(ua, ta)) in tiles.iter().enumerate() {
            for &(ub, tb) in &tiles[i + 1..] {
                if let Some(overlap) = ta.intersect(tb) {
                    if overlap.is_empty() {
                        continue;
                    }
                    let first: Vec<u64> = (0..overlap.rank())
                        .map(|d| overlap.range(d).start)
                        .collect();
                    let linear = linear_index(shape, &first);
                    let diff = TileDiff {
                        device,
                        tile: overlap.clone(),
                        offset: 0,
                        linear_index: linear,
                        expected: None,
                        actual: None,
                    };
                    diags.push(
                        Diagnostic::error(
                            Rule::CoverageOverlap,
                            format!("device {device}"),
                            format!(
                                "units {ua} and {ub} both write {overlap} (first element: linear {linear})"
                            ),
                        )
                        .with_diff(diff),
                    );
                }
            }
        }
    }
    diags
}

fn linear_index(shape: &[u64], idx: &[u64]) -> u64 {
    let mut lin = 0u64;
    for (i, &n) in shape.iter().enumerate() {
        lin = lin * n + idx.get(i).copied().unwrap_or(0);
    }
    lin
}

/// An explicit broadcast ring: the hop sequence (sender first) and the
/// chunk count `K` the slice is cut into. [`ring_spec`] derives the
/// canonical ring the lowering would build; [`verify_ring`] checks any ring
/// (canonical or tampered) against the well-formedness rules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingSpec {
    /// Devices in ring order: `hops[0]` is the sender, each element
    /// forwards chunks to the next.
    pub hops: Vec<(DeviceId, HostId)>,
    /// Number of pipeline chunks (`K` in `T^bc = t + A·t/K`).
    pub chunks: u32,
}

/// The canonical ring for a broadcast-lowered assignment: sender first,
/// receivers sorted host-contiguously starting with the sender's host, and
/// the effective chunk count clamped exactly as the lowering clamps it.
/// Returns `None` for non-ring strategies.
pub fn ring_spec(unit: &UnitTask, a: &AssignmentView) -> Option<RingSpec> {
    let chunks = match a.strategy {
        Strategy::Broadcast { chunks } => chunks,
        _ => return None,
    };
    let mut ordered: Vec<(DeviceId, HostId)> =
        unit.receivers.iter().map(|r| (r.device, r.host)).collect();
    ordered.sort_by_key(|&(d, h)| (h != a.sender_host, h, d));
    let mut hops = Vec::with_capacity(ordered.len() + 1);
    hops.push((a.sender, a.sender_host));
    hops.extend(ordered);
    Some(RingSpec {
        hops,
        chunks: effective_chunks(chunks, unit.bytes),
    })
}

/// The chunk count the lowering actually uses: at least 1, and no more
/// chunks than bytes (mirrors `crossmesh-collectives`' clamp).
pub fn effective_chunks(chunks: u32, bytes: u64) -> u32 {
    chunks.max(1).min((bytes as f64).max(1.0) as u32).max(1)
}

/// Checks one broadcast ring for well-formedness: no self-loop hops, no
/// revisited device (acyclic until the closing wrap), canonical
/// host-contiguous order, and a chunk count matching the closed-form `K`
/// for the strategy's declared `chunks` (`T^bc = t + A·t/K`).
pub fn verify_ring(
    unit: &UnitTask,
    unit_index: usize,
    ring: &RingSpec,
    sender_host: HostId,
    declared_chunks: u32,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let loc = format!("unit {unit_index} ring");

    for w in ring.hops.windows(2) {
        if w[0].0 == w[1].0 {
            diags.push(Diagnostic::error(
                Rule::RingSelfLoop,
                loc.clone(),
                format!("hop {} -> {} sends a chunk to itself", w[0].0, w[1].0),
            ));
        }
    }
    let mut seen: BTreeMap<DeviceId, usize> = BTreeMap::new();
    for (i, &(d, _)) in ring.hops.iter().enumerate() {
        if let Some(&prev) = seen.get(&d) {
            // A consecutive repeat is already a self-loop; only report a
            // cycle for a genuine revisit.
            if i != prev + 1 {
                diags.push(Diagnostic::error(
                    Rule::RingCycle,
                    loc.clone(),
                    format!("device {d} appears at positions {prev} and {i}: the ring has a cycle"),
                ));
            }
        } else {
            seen.insert(d, i);
        }
    }

    // Order: after the sender, receivers must be sorted by the canonical
    // key (sender-host receivers first, then host-ascending,
    // device-ascending within a host) so hosts are visited consecutively.
    let keys: Vec<(bool, HostId, DeviceId)> = ring.hops[1..]
        .iter()
        .map(|&(d, h)| (h != sender_host, h, d))
        .collect();
    if let Some(i) = keys.windows(2).position(|w| w[0] > w[1]) {
        diags.push(Diagnostic::error(
            Rule::RingOrder,
            loc.clone(),
            format!(
                "hops {} and {} are out of canonical order ({} on {} before {} on {}): hosts are not visited consecutively",
                i + 1,
                i + 2,
                ring.hops[i + 1].0,
                ring.hops[i + 1].1,
                ring.hops[i + 2].0,
                ring.hops[i + 2].1,
            ),
        ));
    }

    let k = effective_chunks(declared_chunks, unit.bytes);
    if ring.chunks != k {
        diags.push(Diagnostic::error(
            Rule::RingChunks,
            loc,
            format!(
                "ring cuts {} chunk(s) but the strategy's K for {} declared chunk(s) over {} bytes is {}",
                ring.chunks, declared_chunks, unit.bytes, k
            ),
        ));
    }
    diags
}

/// Topology sanity for one assignment: every involved device must exist in
/// the cluster, claimed hosts must match the topology, and the link
/// parameters must be usable.
fn capacity_rules(
    unit: &UnitTask,
    a: &AssignmentView,
    pos: usize,
    cluster: &ClusterSpec,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let loc = format!("assignment {pos} (unit {})", a.unit);
    if !cluster.contains(a.sender) {
        diags.push(Diagnostic::error(
            Rule::CapacityUnknownDevice,
            loc.clone(),
            format!("sender {} is not in the cluster", a.sender),
        ));
    } else if cluster.host_of(a.sender) != a.sender_host {
        diags.push(Diagnostic::error(
            Rule::CapacityHostMismatch,
            loc.clone(),
            format!(
                "assignment claims sender {} lives on {} but the cluster places it on {}",
                a.sender,
                a.sender_host,
                cluster.host_of(a.sender)
            ),
        ));
    }
    for r in &unit.receivers {
        if !cluster.contains(r.device) {
            diags.push(Diagnostic::error(
                Rule::CapacityUnknownDevice,
                loc.clone(),
                format!("receiver {} is not in the cluster", r.device),
            ));
        } else if cluster.host_of(r.device) != r.host {
            diags.push(Diagnostic::error(
                Rule::CapacityHostMismatch,
                loc.clone(),
                format!(
                    "unit lists receiver {} on {} but the cluster places it on {}",
                    r.device,
                    r.host,
                    cluster.host_of(r.device)
                ),
            ));
        }
    }
    diags
}

/// Checks every host's link parameters for usable bandwidths. Constructed
/// [`crossmesh_netsim::LinkParams`] enforce this, but specs deserialized
/// from a file bypass the constructor.
fn bandwidth_rules(cluster: &ClusterSpec) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for h in 0..cluster.num_hosts() {
        let links = cluster.host(HostId(h)).links;
        for (name, bw) in [
            ("intra-host", links.intra_host_bw),
            ("inter-host", links.inter_host_bw),
        ] {
            if !(bw.is_finite() && bw > 0.0) {
                diags.push(Diagnostic::error(
                    Rule::CapacityBandwidth,
                    format!("host h{h}"),
                    format!("{name} bandwidth {bw} is not a positive finite number"),
                ));
            }
        }
    }
    diags
}

/// One pipeline operation on one stage, as the schedule verifier sees it.
/// Mirrors `crossmesh-pipeline`'s `Op` (microbatch index per variant); the
/// pipeline crate sits above this one, so callers map their op type into
/// this view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleOp {
    /// Forward pass of one microbatch.
    Forward(u32),
    /// Activation-gradient backward half of one microbatch.
    BackwardAct(u32),
    /// Weight-gradient backward half of one microbatch.
    BackwardWeight(u32),
}

impl ScheduleOp {
    /// The microbatch index the op operates on.
    pub fn microbatch(self) -> u32 {
        match self {
            ScheduleOp::Forward(m) | ScheduleOp::BackwardAct(m) | ScheduleOp::BackwardWeight(m) => {
                m
            }
        }
    }

    fn short(self) -> String {
        match self {
            ScheduleOp::Forward(m) => format!("F{m}"),
            ScheduleOp::BackwardAct(m) => format!("B{m}"),
            ScheduleOp::BackwardWeight(m) => format!("W{m}"),
        }
    }
}

/// Verifies a pipeline schedule: per-stage operation shape, forward /
/// backward ordering, backward weight-delay ordering, and cross-stage
/// hazard freedom (no read-before-arrival) via a dependency-graph
/// topological check that reports deadlock cycles with a minimal witness.
///
/// `per_stage[s]` is stage `s`'s operation sequence; `num_microbatches` is
/// `M`. Forward activations flow stage `s-1 -> s`, activation gradients
/// flow `s+1 -> s`; within a stage, operations run strictly in sequence.
pub fn verify_schedule(per_stage: &[Vec<ScheduleOp>], num_microbatches: u32) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let m = num_microbatches;
    let training = per_stage
        .iter()
        .any(|ops| ops.iter().any(|o| !matches!(o, ScheduleOp::Forward(_))));

    for (s, ops) in per_stage.iter().enumerate() {
        let loc = format!("stage {s}");
        let mut fwd = Vec::new();
        let mut bact = Vec::new();
        let mut bw = Vec::new();
        for op in ops {
            match op {
                ScheduleOp::Forward(i) => fwd.push(*i),
                ScheduleOp::BackwardAct(i) => bact.push(*i),
                ScheduleOp::BackwardWeight(i) => bw.push(*i),
            }
        }
        let want_b = if training { m as usize } else { 0 };
        if fwd.len() != m as usize || bact.len() != want_b || bw.len() != want_b {
            diags.push(Diagnostic::error(
                Rule::ScheduleShape,
                loc.clone(),
                format!(
                    "expected {m} forward / {want_b} backward-act / {want_b} backward-weight ops, found {}/{}/{}",
                    fwd.len(),
                    bact.len(),
                    bw.len()
                ),
            ));
        }
        for (kind, seq) in [("forward", &fwd), ("backward-act", &bact)] {
            if let Some(i) = seq.windows(2).position(|w| w[0] >= w[1]) {
                diags.push(Diagnostic::error(
                    Rule::ScheduleForwardOrder,
                    loc.clone(),
                    format!(
                        "{kind} microbatch {} runs before microbatch {}: not in ascending order",
                        seq[i + 1],
                        seq[i]
                    ),
                ));
            }
        }
        if let Some(i) = bw.windows(2).position(|w| w[0] >= w[1]) {
            diags.push(Diagnostic::error(
                Rule::ScheduleWeightOrder,
                loc.clone(),
                format!(
                    "backward-weight microbatch {} overtakes microbatch {}",
                    bw[i + 1],
                    bw[i]
                ),
            ));
        }
        // Per-microbatch causal order within the stage: F < B < W.
        let pos_of = |target: ScheduleOp| ops.iter().position(|o| *o == target);
        for mb in 0..m {
            let f = pos_of(ScheduleOp::Forward(mb));
            let b = pos_of(ScheduleOp::BackwardAct(mb));
            let w = pos_of(ScheduleOp::BackwardWeight(mb));
            if let (Some(f), Some(b)) = (f, b) {
                if b < f {
                    diags.push(Diagnostic::error(
                        Rule::ScheduleMicrobatchOrder,
                        loc.clone(),
                        format!("backward-act of microbatch {mb} runs before its forward"),
                    ));
                }
            }
            if let (Some(b), Some(w)) = (b, w) {
                if w < b {
                    diags.push(Diagnostic::error(
                        Rule::ScheduleWeightOrder,
                        loc.clone(),
                        format!(
                            "backward-weight of microbatch {mb} runs before its activation half"
                        ),
                    ));
                }
            }
        }
    }

    diags.extend(schedule_deadlocks(per_stage));
    record_run("check.schedule", &diags);
    diags
}

/// Builds the cross-stage waits-for graph and looks for a cycle. Nodes are
/// `(stage, op-position)`; edges run from each op to its prerequisite: the
/// previous op on the same stage, the same microbatch's forward on the
/// previous stage (for forwards), and the same microbatch's backward-act on
/// the next stage (for backward-acts). A cycle means no execution order
/// exists: the pipeline deadlocks.
fn schedule_deadlocks(per_stage: &[Vec<ScheduleOp>]) -> Vec<Diagnostic> {
    let stages = per_stage.len();
    // Node id for (stage, index).
    let offset: Vec<usize> = per_stage
        .iter()
        .scan(0usize, |acc, ops| {
            let o = *acc;
            *acc += ops.len();
            Some(o)
        })
        .collect();
    let total: usize = per_stage.iter().map(Vec::len).sum();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); total];
    let find = |s: usize, target: ScheduleOp| -> Option<usize> {
        per_stage[s]
            .iter()
            .position(|o| *o == target)
            .map(|i| offset[s] + i)
    };
    for (s, ops) in per_stage.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            let node = offset[s] + i;
            if i > 0 {
                preds[node].push(node - 1);
            }
            match *op {
                ScheduleOp::Forward(mb) if s > 0 => {
                    if let Some(p) = find(s - 1, ScheduleOp::Forward(mb)) {
                        preds[node].push(p);
                    }
                }
                ScheduleOp::BackwardAct(mb) if s + 1 < stages => {
                    if let Some(p) = find(s + 1, ScheduleOp::BackwardAct(mb)) {
                        preds[node].push(p);
                    }
                }
                _ => {}
            }
        }
    }

    // Iterative three-color DFS; on a back edge, the stack slice from the
    // back-edge target onward is a simple (hence minimal-witness) cycle.
    let mut color = vec![0u8; total]; // 0 white, 1 gray, 2 black
    let mut cycle: Option<Vec<usize>> = None;
    'roots: for root in 0..total {
        if color[root] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = 1;
        while let Some(top) = stack.last_mut() {
            let node = top.0;
            if top.1 < preds[node].len() {
                let p = preds[node][top.1];
                top.1 += 1;
                match color[p] {
                    0 => {
                        color[p] = 1;
                        stack.push((p, 0));
                    }
                    1 => {
                        let start = stack.iter().position(|&(n, _)| n == p).unwrap_or(0);
                        let mut nodes: Vec<usize> =
                            stack[start..].iter().map(|&(n, _)| n).collect();
                        nodes.push(p);
                        cycle = Some(nodes);
                        break 'roots;
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }

    let Some(nodes) = cycle else {
        return Vec::new();
    };
    let name = |node: usize| -> String {
        let s = offset.partition_point(|&o| o <= node) - 1;
        let op = per_stage[s][node - offset[s]];
        format!("s{s}:{}", op.short())
    };
    // The DFS walks predecessor edges, so the stack order is
    // waiter -> prerequisite; reverse it to read as "waits for".
    let witness: Vec<String> = nodes.iter().rev().map(|&n| name(n)).collect();
    vec![Diagnostic::error(
        Rule::ScheduleDeadlock,
        "schedule".to_string(),
        format!(
            "cross-stage dependency cycle (each op waits for the next): {}",
            witness.join(" -> ")
        ),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use crossmesh_mesh::Receiver;

    fn unit(index: usize, senders: &[(u32, u32)], receivers: &[(u32, u32, Tile)]) -> UnitTask {
        let slice = Tile::new([0..4, 0..4]);
        UnitTask {
            index,
            slice: slice.clone(),
            bytes: slice.volume() * 4,
            senders: senders
                .iter()
                .map(|&(d, h)| (DeviceId(d), HostId(h)))
                .collect(),
            receivers: receivers
                .iter()
                .map(|&(d, h, ref t)| Receiver {
                    device: DeviceId(d),
                    host: HostId(h),
                    needed: t.clone(),
                })
                .collect(),
        }
    }

    fn view(unit: usize, sender: u32, host: u32) -> AssignmentView {
        AssignmentView {
            unit,
            sender: DeviceId(sender),
            sender_host: HostId(host),
            strategy: Strategy::SendRecv,
        }
    }

    fn no_exclusions() -> impl Fn(DeviceId, HostId) -> bool {
        |_, _| false
    }

    #[test]
    fn clean_plan_yields_no_diagnostics() {
        let units = vec![
            unit(0, &[(0, 0)], &[(4, 1, Tile::new([0..4, 0..2]))]),
            unit(1, &[(1, 0)], &[(4, 1, Tile::new([0..4, 2..4]))]),
        ];
        let plan = vec![view(0, 0, 0), view(1, 1, 0)];
        let diags = verify_plan(&units, &[4, 4], 4, &plan, None, &no_exclusions());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dropped_and_duplicated_flows_are_caught() {
        let units = vec![
            unit(0, &[(0, 0)], &[(4, 1, Tile::new([0..4, 0..2]))]),
            unit(1, &[(1, 0)], &[(4, 1, Tile::new([0..4, 2..4]))]),
        ];
        let dropped = vec![view(0, 0, 0)];
        let diags = verify_plan(&units, &[4, 4], 4, &dropped, None, &no_exclusions());
        assert!(diags.iter().any(|d| d.rule == Rule::CoverageMissing));

        let duplicated = vec![view(0, 0, 0), view(1, 1, 0), view(1, 1, 0)];
        let diags = verify_plan(&units, &[4, 4], 4, &duplicated, None, &no_exclusions());
        assert!(diags.iter().any(|d| d.rule == Rule::CoverageDuplicate));

        let unknown = vec![view(0, 0, 0), view(7, 1, 0)];
        let diags = verify_plan(&units, &[4, 4], 4, &unknown, None, &no_exclusions());
        assert!(diags.iter().any(|d| d.rule == Rule::CoverageUnknownUnit));
        assert!(diags.iter().any(|d| d.rule == Rule::CoverageMissing));
    }

    #[test]
    fn overlapping_destinations_carry_a_tile_diff() {
        // Units 0 and 1 both deliver column 1 to device 4.
        let units = vec![
            unit(0, &[(0, 0)], &[(4, 1, Tile::new([0..4, 0..2]))]),
            unit(1, &[(1, 0)], &[(4, 1, Tile::new([0..4, 1..4]))]),
        ];
        let plan = vec![view(0, 0, 0), view(1, 1, 0)];
        let diags = verify_plan(&units, &[4, 4], 4, &plan, None, &no_exclusions());
        let overlap = diags
            .iter()
            .find(|d| d.rule == Rule::CoverageOverlap)
            .expect("overlap reported");
        let diff = overlap.diff.as_ref().expect("diff attached");
        assert_eq!(diff.device, DeviceId(4));
        assert_eq!(diff.tile, Tile::new([0..4, 1..2]));
        assert_eq!(diff.linear_index, 1);
    }

    #[test]
    fn sender_rules_fire() {
        let units = vec![unit(
            0,
            &[(0, 0), (1, 0)],
            &[(4, 1, Tile::new([0..4, 0..4]))],
        )];
        // Not a replica.
        let plan = vec![view(0, 9, 2)];
        let diags = verify_plan(&units, &[4, 4], 4, &plan, None, &no_exclusions());
        assert!(diags.iter().any(|d| d.rule == Rule::SenderNotReplica));
        // Excluded host.
        let plan = vec![view(0, 0, 0)];
        let excl = |_d: DeviceId, h: HostId| h == HostId(0);
        let diags = verify_plan(&units, &[4, 4], 4, &plan, None, &excl);
        assert!(diags.iter().any(|d| d.rule == Rule::SenderExcluded));
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn bytes_rule_fires_on_inconsistent_units() {
        let mut u = unit(0, &[(0, 0)], &[(4, 1, Tile::new([0..4, 0..4]))]);
        u.bytes += 1;
        let diags = verify_plan(&[u], &[4, 4], 4, &[view(0, 0, 0)], None, &no_exclusions());
        assert!(diags.iter().any(|d| d.rule == Rule::CoverageBytes));
    }

    #[test]
    fn canonical_rings_pass_and_tampered_rings_fail() {
        // Receivers on two hosts; sender on host 0.
        let u = unit(
            0,
            &[(0, 0)],
            &[
                (2, 0, Tile::new([0..2, 0..4])),
                (4, 1, Tile::new([2..3, 0..4])),
                (5, 1, Tile::new([3..4, 0..4])),
            ],
        );
        let a = AssignmentView {
            unit: 0,
            sender: DeviceId(0),
            sender_host: HostId(0),
            strategy: Strategy::Broadcast { chunks: 4 },
        };
        let ring = ring_spec(&u, &a).expect("broadcast has a ring");
        assert_eq!(
            ring.hops.iter().map(|&(d, _)| d.0).collect::<Vec<_>>(),
            vec![0, 2, 4, 5]
        );
        assert!(verify_ring(&u, 0, &ring, HostId(0), 4).is_empty());

        // Swapped ring edge: receivers out of host-contiguous order.
        let mut swapped = ring.clone();
        swapped.hops.swap(1, 2);
        let diags = verify_ring(&u, 0, &swapped, HostId(0), 4);
        assert!(diags.iter().any(|d| d.rule == Rule::RingOrder), "{diags:?}");

        // Revisit: a device appears twice.
        let mut cyclic = ring.clone();
        cyclic.hops.push(ring.hops[1]);
        let diags = verify_ring(&u, 0, &cyclic, HostId(0), 4);
        assert!(diags.iter().any(|d| d.rule == Rule::RingCycle));

        // Self-loop: consecutive duplicate hop.
        let mut selfloop = ring.clone();
        selfloop.hops.insert(2, ring.hops[1]);
        let diags = verify_ring(&u, 0, &selfloop, HostId(0), 4);
        assert!(diags.iter().any(|d| d.rule == Rule::RingSelfLoop));

        // Wrong chunk count.
        let mut chunks = ring.clone();
        chunks.chunks = 7;
        let diags = verify_ring(&u, 0, &chunks, HostId(0), 4);
        assert!(diags.iter().any(|d| d.rule == Rule::RingChunks));
    }

    #[test]
    fn effective_chunks_clamps_like_the_lowering() {
        assert_eq!(effective_chunks(0, 100), 1);
        assert_eq!(effective_chunks(4, 100), 4);
        assert_eq!(effective_chunks(16, 3), 3);
        assert_eq!(effective_chunks(16, 0), 1);
    }

    #[test]
    fn capacity_rules_fire_against_a_cluster() {
        use crossmesh_netsim::{ClusterSpec, LinkParams};
        let c = ClusterSpec::homogeneous(2, 2, LinkParams::new(100.0, 1.0));
        // Device 9 does not exist; device 0 lives on host 0, not host 1.
        let units = vec![unit(
            0,
            &[(9, 4), (0, 1)],
            &[(3, 1, Tile::new([0..4, 0..4]))],
        )];
        let plan = vec![view(0, 9, 4)];
        let diags = verify_plan(&units, &[4, 4], 4, &plan, Some(&c), &no_exclusions());
        assert!(diags.iter().any(|d| d.rule == Rule::CapacityUnknownDevice));
        let plan = vec![view(0, 0, 1)];
        let diags = verify_plan(&units, &[4, 4], 4, &plan, Some(&c), &no_exclusions());
        assert!(diags.iter().any(|d| d.rule == Rule::CapacityHostMismatch));
    }

    #[test]
    fn unbounded_fabric_warns_but_does_not_convict() {
        use crossmesh_netsim::{ClusterSpec, FabricModel, LinkParams};
        let c = ClusterSpec::homogeneous(2, 2, LinkParams::new(100.0, 1.0));
        let units = vec![unit(0, &[(0, 0)], &[(3, 1, Tile::new([0..4, 0..4]))])];
        let plan = vec![view(0, 0, 0)];
        let diags = verify_plan(&units, &[4, 4], 4, &plan, Some(&c), &no_exclusions());
        let warn = diags
            .iter()
            .find(|d| d.rule == Rule::CapacityUnbounded)
            .expect("vacuous capacity warning");
        assert_eq!(warn.severity, Severity::Warning);
        assert!(!crate::has_errors(&diags), "{diags:?}");
        // A bounded fabric silences it.
        let bounded = ClusterSpec::homogeneous(2, 2, LinkParams::new(100.0, 1.0)).with_fabric(
            FabricModel::Flat {
                capacity: Some(8.0),
            },
        );
        let diags = verify_plan(&units, &[4, 4], 4, &plan, Some(&bounded), &no_exclusions());
        assert!(
            !diags.iter().any(|d| d.rule == Rule::CapacityUnbounded),
            "{diags:?}"
        );
    }

    /// Two senders on host 0, two expert devices on host 1; every pair
    /// ships 8 bytes. Unit `i*2+j` carries pair (sender i → expert j).
    #[allow(clippy::single_range_in_vec_init)]
    fn a2a_fixture() -> (Vec<UnitTask>, Vec<AssignmentView>, Vec<A2aPairView>) {
        let mut units = Vec::new();
        let mut pairs = Vec::new();
        let mut plan = Vec::new();
        for s in 0..2u32 {
            for e in 0..2u32 {
                let u = (s * 2 + e) as usize;
                let lo = u as u64 * 8;
                let slice = Tile::new([lo..lo + 8]);
                units.push(UnitTask {
                    index: u,
                    slice: slice.clone(),
                    bytes: 8,
                    senders: vec![(DeviceId(s), HostId(0))],
                    receivers: vec![Receiver {
                        device: DeviceId(2 + e),
                        host: HostId(1),
                        needed: slice,
                    }],
                });
                pairs.push(A2aPairView {
                    src_device: DeviceId(s),
                    src_host: HostId(0),
                    dst_device: DeviceId(2 + e),
                    dst_host: HostId(1),
                    bytes: 8,
                });
                plan.push(AssignmentView {
                    unit: u,
                    sender: DeviceId(s),
                    sender_host: HostId(0),
                    strategy: Strategy::SendRecv,
                });
            }
        }
        (units, plan, pairs)
    }

    #[test]
    fn a2a_rules_pass_a_faithful_plan_and_convict_mutations() {
        let (units, plan, pairs) = a2a_fixture();
        assert!(verify_a2a(&pairs, &units, 1, &plan, None).is_empty());

        // Dropped pair.
        let dropped: Vec<_> = plan[1..].to_vec();
        let diags = verify_a2a(&pairs, &units, 1, &dropped, None);
        assert!(
            diags.iter().any(|d| d.rule == Rule::A2aMissingPair),
            "{diags:?}"
        );

        // Duplicated pair.
        let mut duplicated = plan.clone();
        duplicated.push(plan[0].clone());
        let diags = verify_a2a(&pairs, &units, 1, &duplicated, None);
        assert!(
            diags.iter().any(|d| d.rule == Rule::A2aDuplicatePair),
            "{diags:?}"
        );

        // Wrong shard size.
        let mut fat = pairs.clone();
        fat[0].bytes = 9;
        let diags = verify_a2a(&fat, &units, 1, &plan, None);
        assert!(diags.iter().any(|d| d.rule == Rule::A2aBytes), "{diags:?}");

        // Delivery with no expected pair.
        let orphaned: Vec<_> = pairs[1..].to_vec();
        let diags = verify_a2a(&orphaned, &units, 1, &plan, None);
        assert!(
            diags.iter().any(|d| d.rule == Rule::A2aDuplicatePair),
            "{diags:?}"
        );
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)]
    fn a2a_rail_capacity_convicts_overdeclared_rails() {
        use crossmesh_netsim::{ClusterSpec, FabricModel, LinkParams};
        let c = ClusterSpec::homogeneous(2, 4, LinkParams::new(100.0, 1.0)).with_fabric(
            FabricModel::RailOptimized {
                rails: 2,
                spine_capacity: 1.0,
            },
        );
        let slice = Tile::new([0..64]);
        let units = vec![UnitTask {
            index: 0,
            slice: slice.clone(),
            bytes: 64,
            senders: vec![(DeviceId(0), HostId(0))],
            receivers: vec![Receiver {
                device: DeviceId(4),
                host: HostId(1),
                needed: slice,
            }],
        }];
        let pairs = vec![A2aPairView {
            src_device: DeviceId(0),
            src_host: HostId(0),
            dst_device: DeviceId(4),
            dst_host: HostId(1),
            bytes: 64,
        }];
        let assign = |rails: u32| {
            vec![AssignmentView {
                unit: 0,
                sender: DeviceId(0),
                sender_host: HostId(0),
                strategy: Strategy::MultiRail { rails, chunks: 16 },
            }]
        };
        // Matching rails: greedy spray is within fair share + one chunk.
        assert!(verify_a2a(&pairs, &units, 1, &assign(2), Some(&c)).is_empty());
        // 3 logical rails fold 2:1 onto 2 physical rails, so one NIC
        // carries ~2/3 of the bytes — past its fair share plus one chunk.
        let diags = verify_a2a(&pairs, &units, 1, &assign(3), Some(&c));
        assert!(
            diags.iter().any(|d| d.rule == Rule::A2aRailCapacity),
            "{diags:?}"
        );
    }

    fn f(m: u32) -> ScheduleOp {
        ScheduleOp::Forward(m)
    }
    fn b(m: u32) -> ScheduleOp {
        ScheduleOp::BackwardAct(m)
    }
    fn w(m: u32) -> ScheduleOp {
        ScheduleOp::BackwardWeight(m)
    }

    #[test]
    fn a_valid_one_f_one_b_schedule_passes() {
        // Two stages, two microbatches, hand-built 1F1B.
        let s0 = vec![f(0), f(1), b(0), w(0), b(1), w(1)];
        let s1 = vec![f(0), b(0), w(0), f(1), b(1), w(1)];
        let diags = verify_schedule(&[s0, s1], 2);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn schedule_shape_and_order_rules_fire() {
        // Missing a backward-weight op.
        let s0 = vec![f(0), b(0)];
        let diags = verify_schedule(&[s0], 1);
        assert!(diags.iter().any(|d| d.rule == Rule::ScheduleShape));

        // Forwards out of order.
        let s0 = vec![f(1), f(0), b(0), w(0), b(1), w(1)];
        let diags = verify_schedule(&[s0], 2);
        assert!(diags.iter().any(|d| d.rule == Rule::ScheduleForwardOrder));

        // Weight half before activation half.
        let s0 = vec![f(0), w(0), b(0)];
        let diags = verify_schedule(&[s0], 1);
        assert!(diags.iter().any(|d| d.rule == Rule::ScheduleWeightOrder));
    }

    #[test]
    fn cross_stage_cycle_is_reported_with_a_witness() {
        // Stage 0 runs B0 before F0: s0:B0 waits s1:B0 waits (seq) s1:F0
        // waits s0:F0 waits (seq) s0:B0 — a 4-op cycle.
        let s0 = vec![b(0), w(0), f(0)];
        let s1 = vec![f(0), b(0), w(0)];
        let diags = verify_schedule(&[s0, s1], 1);
        let dl = diags
            .iter()
            .find(|d| d.rule == Rule::ScheduleDeadlock)
            .expect("deadlock reported");
        for op in ["s0:B0", "s1:B0", "s1:F0", "s0:F0"] {
            assert!(dl.explanation.contains(op), "{}", dl.explanation);
        }
    }

    #[test]
    fn inference_schedules_need_no_backwards() {
        let s0 = vec![f(0), f(1)];
        let s1 = vec![f(0), f(1)];
        let diags = verify_schedule(&[s0, s1], 2);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
