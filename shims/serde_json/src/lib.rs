//! Vendored stand-in for `serde_json`: renders and parses JSON text against
//! the [`serde`] shim's [`Value`] tree.

pub use serde::{Error, Map, Value};

/// Serializes `value` to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::deserialize(&value)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        input: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::deserialize(&v)
}

/// Builds a [`Value::Object`] from `"key": expr` pairs; each expression is
/// converted through [`serde::Serialize`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$(serde::Serialize::serialize(&$elem)),*])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        let mut __m = $crate::Map::new();
        $(__m.insert(::std::string::String::from($key), serde::Serialize::serialize(&$value));)*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { serde::Serialize::serialize(&$other) };
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's `{}` formatting is shortest-roundtrip; integral values print
        // without a fraction and parse back as JSON integers, which the shim's
        // numeric deserializers accept interchangeably.
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .input
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.input[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|b| b != b'"' && b != b'\\' && b < 0x80)
            {
                self.pos += 1;
            }
            // Multi-byte UTF-8 runs are copied wholesale.
            while self.peek().is_some_and(|b| b >= 0x80) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            if start != self.pos {
                continue;
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .input
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::custom("bad escape in string")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v: Value = from_str("{\"a\": [1, -2, 2.5, true, null, \"x\\ny\"]}").unwrap();
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(2.5));
        assert_eq!(v["a"][5], "x\ny");
    }

    #[test]
    fn pretty_output_reparses() {
        let v = json!({ "name": "payload", "count": 3u32, "ratio": 0.5f64 });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back["name"], "payload");
        assert_eq!(back["count"].as_u64(), Some(3));
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<(u32, f64)> = vec![(1, 0.25), (7, 3.0)];
        let text = to_string(&v).unwrap();
        let back: Vec<(u32, f64)> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integral_floats_survive() {
        let text = to_string(&vec![2.0f64]).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, vec![2.0]);
    }
}
