//! Vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` shim's `Value` tree. The parser walks raw token
//! trees (no `syn`/`quote` available offline) and supports exactly the item
//! shapes this workspace uses: non-generic structs (named, tuple, unit) and
//! non-generic enums (unit, newtype, tuple, and struct variants), using the
//! externally-tagged representation for enums.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

#[derive(Debug)]
struct Input {
    name: String,
    kind: Kind,
}

/// Skips leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                it.next(); // the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Consumes type tokens until a comma at angle-bracket depth zero.
fn skip_type(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth = 0i32;
    while let Some(tok) = it.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                it.next();
                return;
            }
            _ => {}
        }
        it.next();
    }
}

/// Parses `name: Type, ...` named-field bodies, returning field names.
fn parse_named(stream: TokenStream) -> Vec<String> {
    let mut it = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde derive: expected `:` after field, got {other:?}"),
                }
                skip_type(&mut it);
            }
            None => return names,
            other => panic!("serde derive: unexpected token in fields: {other:?}"),
        }
    }
}

/// Counts the fields of a tuple-struct / tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut it = stream.into_iter().peekable();
    let mut count = 0usize;
    loop {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            return count;
        }
        count += 1;
        skip_type(&mut it);
    }
}

/// Parses enum variants: `Name`, `Name(T, ..)`, or `Name { f: T, .. }`.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return variants,
            other => panic!("serde derive: unexpected token in enum body: {other:?}"),
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                it.next();
                Fields::Named(parse_named(body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body = g.stream();
                it.next();
                Fields::Tuple(count_tuple_fields(body))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => return variants,
            other => panic!("serde derive: expected `,` between variants, got {other:?}"),
        }
    }
}

fn parse(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected struct/enum, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde derive shim: generic types are not supported ({name})");
        }
    }
    let kind = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kw == "struct" {
                Kind::Struct(Fields::Named(parse_named(g.stream())))
            } else if kw == "enum" {
                Kind::Enum(parse_variants(g.stream()))
            } else {
                panic!("serde derive shim: cannot derive for `{kw}`");
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && kw == "struct" => {
            Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && kw == "struct" => {
            Kind::Struct(Fields::Unit)
        }
        other => panic!("serde derive shim: unsupported item shape for {name}: {other:?}"),
    };
    Input { name, kind }
}

fn serialize_fields_named(fields: &[String], access: &str) -> String {
    let mut out = String::from("{ let mut __m = ::serde::Map::new();\n");
    for f in fields {
        out.push_str(&format!(
            "__m.insert(::std::string::String::from(\"{f}\"), \
             ::serde::Serialize::serialize({access}{f}));\n"
        ));
    }
    out.push_str("::serde::Value::Object(__m) }");
    out
}

fn deserialize_fields_named(name_path: &str, fields: &[String], src: &str) -> String {
    let mut out = format!(
        "{{ let __m = {src}.as_object().ok_or_else(|| \
         ::serde::Error::custom(\"expected object for {name_path}\"))?;\n\
         ::std::result::Result::Ok({name_path} {{\n"
    );
    for f in fields {
        out.push_str(&format!(
            "{f}: ::serde::Deserialize::deserialize(\
             __m.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,\n"
        ));
    }
    out.push_str("}) }");
    out
}

/// Implements `#[derive(Serialize)]` for the supported item shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Fields::Named(fields)) => serialize_fields_named(fields, "&self."),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n"
                    )),
                    Fields::Named(fs) => {
                        let bind = fs.join(", ");
                        let inner = serialize_fields_named(fs, "");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {bind} }} => {{\n\
                             let __inner = {inner};\n\
                             let mut __o = ::serde::Map::new();\n\
                             __o.insert(::std::string::String::from(\"{v}\"), __inner);\n\
                             ::serde::Value::Object(__o) }}\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({}) => {{\n\
                             let __inner = {inner};\n\
                             let mut __o = ::serde::Map::new();\n\
                             __o.insert(::std::string::String::from(\"{v}\"), __inner);\n\
                             ::serde::Value::Object(__o) }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .expect("serde derive shim: generated Serialize impl must parse")
}

/// Implements `#[derive(Deserialize)]` for the supported item shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Kind::Struct(Fields::Named(fields)) => deserialize_fields_named(name, fields, "__v"),
        Kind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?"))
                .collect();
            format!(
                "{{ let __arr = __v.as_array().filter(|a| a.len() == {n})\
                 .ok_or_else(|| ::serde::Error::custom(\"expected {n}-tuple for {name}\"))?;\n\
                 ::std::result::Result::Ok({name}({})) }}",
                elems.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}),\n"
                    )),
                    Fields::Named(fs) => {
                        let inner =
                            deserialize_fields_named(&format!("{name}::{v}"), fs, "__inner");
                        tagged_arms.push_str(&format!("\"{v}\" => {inner},\n"));
                    }
                    Fields::Tuple(n) => {
                        let inner = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{v}(\
                                 ::serde::Deserialize::deserialize(__inner)?))"
                            )
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?"))
                                .collect();
                            format!(
                                "{{ let __arr = __inner.as_array().filter(|a| a.len() == {n})\
                                 .ok_or_else(|| ::serde::Error::custom(\
                                 \"expected {n}-tuple for {name}::{v}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{v}({})) }}",
                                elems.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!("\"{v}\" => {inner},\n"));
                    }
                }
            }
            format!(
                "{{ if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}\
                 _ => return ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant {{__s}}\"))),\n}}\n}}\n\
                 let __o = __v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 \"expected externally tagged {name}\"))?;\n\
                 let (__tag, __inner) = __o.iter().next().ok_or_else(|| \
                 ::serde::Error::custom(\"empty object for {name}\"))?;\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant {{__other}}\"))),\n}}\n}}"
            )
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    );
    out.parse()
        .expect("serde derive shim: generated Deserialize impl must parse")
}
