//! Vendored stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size` / `finish`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock sampler that
//! prints mean iteration time per benchmark. No statistics, plots, or
//! baseline storage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        run_benchmark(&id.into(), samples, f);
        self
    }

    /// Overrides the default sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Finishes the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, running it several times per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / iters as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // One warm-up call to measure scale, then the requested samples.
    let mut warmup = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut warmup);
    let per_iter = warmup.samples.first().copied().unwrap_or(Duration::ZERO);
    // Aim for ~10ms per sample, capped to keep total runtime bounded.
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u64
    };

    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample,
    };
    for _ in 0..samples.max(1) {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("bench {id}: no samples recorded");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "bench {id}: mean {mean:?} (min {min:?}, max {max:?}, {} samples x {} iters)",
        b.samples.len(),
        iters_per_sample
    );
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn bench_function_outside_group() {
        let mut c = Criterion::default();
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
    }
}
