//! Vendored stand-in for the `parking_lot` crate.
//!
//! Provides the surface this workspace uses: a non-poisoning [`Mutex`]
//! whose `lock()` returns the guard directly (no `Result`), and a
//! [`Condvar`] with `wait_for` / `notify_all`. Internally this wraps the
//! std primitives and recovers from poisoning via
//! [`PoisonError::into_inner`](std::sync::PoisonError::into_inner) — the
//! semantic parking_lot guarantees (a panicking holder does not poison
//! the lock for everyone else), without the custom futex machinery.
//!
//! Every acquire and release is also a `crossmesh-hb` instrumentation
//! point: when the happens-before seam is armed, lock edges keyed by the
//! mutex's address are emitted to the installed sink (the race detector),
//! and the call sites double as schedule-perturbation points. Disarmed,
//! each point costs one relaxed atomic load.

use crossmesh_hb as hb;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::Duration;

/// A mutual-exclusion primitive that does not poison on panic.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` only so [`Condvar::wait_for`]
/// can hand it to the std condvar by value and put it back; it is `Some`
/// at every point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<StdMutexGuard<'a, T>>,
    /// The owning mutex's hb object id, for the release edge on drop.
    lock_id: u64,
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Emitted while still holding the lock: the release edge must
        // order before any later acquire of the same mutex.
        hb::release(self.lock_id);
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in another holder does not make this
    /// return an error: the lock is simply acquired.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let lock_id = hb::object_id(self);
        hb::preempt();
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        hb::acquire(lock_id);
        MutexGuard {
            inner: Some(guard),
            lock_id,
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard is present")
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard is present")
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with the non-poisoning [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Blocks until notified or `timeout` elapses. The guard is atomically
    /// released while waiting and re-acquired before returning, matching
    /// parking_lot's in-place signature.
    #[track_caller]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        // A wait releases and re-acquires the mutex; mirror that for the
        // happens-before engine so state handed off through a condvar
        // carries the lock's edge.
        hb::release(guard.lock_id);
        let std_guard = guard.inner.take().expect("guard is present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.inner = Some(std_guard);
        hb::acquire(guard.lock_id);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies");
        })
        .join();
        // A std mutex would now be poisoned; ours still hands out the lock.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let res = cv.wait_for(&mut guard, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                let res = cv.wait_for(&mut done, Duration::from_secs(5));
                assert!(!res.timed_out(), "should be woken, not timed out");
            }
        });
        thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn into_inner_returns_value() {
        let m = Mutex::new(vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
