//! Vendored stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`, range and
//! tuple strategies, `any::<bool|u64>()`, `Just`, `prop::option::of`,
//! `prop::collection::{vec, btree_set}`, the `proptest!` test macro and the
//! `prop_assert*` / `prop_assume!` assertion macros. Cases are generated
//! deterministically from the test name; failing inputs are reported via
//! `Debug` but not shrunk.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty choice range");
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed; the run aborts with this message.
    Fail(String),
    /// `prop_assume!` rejected the input; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (assumption not met) with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy it
    /// maps to.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (the `prop_oneof!` backend).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A uniform union of the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical full-range strategy (the `any::<T>()` backend).
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Full-range strategy for `u64`.
#[derive(Debug, Clone, Copy)]
pub struct AnyU64;

impl Strategy for AnyU64 {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u64 {
    type Strategy = AnyU64;
    fn arbitrary() -> AnyU64 {
        AnyU64
    }
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy modules accessed as `prop::...` from the prelude.
pub mod prop {
    /// Strategies for collections.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::ops::{Range, RangeInclusive};

        /// Element-count specification: exact or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.lo + rng.below((self.hi - self.lo) as u64 + 1) as usize
            }
        }

        /// Strategy for `Vec`s of `element` with a size in `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates `Vec`s of `element` with a size drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy for `BTreeSet`s of `element` with a size in `size`.
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let target = self.size.pick(rng).max(self.size.lo);
                let mut out = BTreeSet::new();
                // Duplicates shrink the set; retry a bounded number of times
                // to reach at least the lower size bound.
                for _ in 0..target.max(1) * 64 {
                    if out.len() >= target {
                        break;
                    }
                    out.insert(self.element.generate(rng));
                }
                assert!(
                    out.len() >= self.size.lo,
                    "btree_set strategy could not reach its minimum size \
                     (element domain too small?)"
                );
                out
            }
        }

        /// Generates `BTreeSet`s of `element` with a size drawn from `size`.
        pub fn btree_set<S: Strategy>(
            element: S,
            size: impl Into<SizeRange>,
        ) -> BTreeSetStrategy<S> {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Strategies for `Option`.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy for `Option<S::Value>`; mostly `Some`.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                // 1-in-4 None, matching real proptest's Some-heavy default.
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }

        /// Generates `None` or `Some(inner)`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

/// Runs one property: `cases` accepted inputs, deterministic seeding from
/// the test name. Panics on the first failing case.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = config.cases as u64 * 16 + 1024;
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest `{name}`: too many rejected inputs ({attempts} attempts \
             for {accepted}/{} accepted cases)",
            config.cases
        );
        let mut rng = TestRng::seed_from_u64(seed.wrapping_add(attempts.wrapping_mul(0x9e37)));
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed (attempt {attempts}): {msg}");
            }
        }
    }
}

/// Declares property tests: each function's arguments are drawn from the
/// given strategies, and the body may use `prop_assert*` / `prop_assume!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest($cfg, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the generating attempt.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

/// Skips the current case when its generated inputs don't meet a
/// precondition; skipped cases are regenerated, not counted.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = Strategy::generate(&(3u32..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(1usize..=3), &mut rng);
            assert!((1..=3).contains(&w));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = Strategy::generate(&prop::collection::vec(0u64..5, 2), &mut rng);
            assert_eq!(v.len(), 2);
            let s = Strategy::generate(&prop::collection::btree_set(0u32..8, 1..4), &mut rng);
            assert!((1..4).contains(&s.len()));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|v| v)];
        let mut rng = TestRng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(Strategy::generate(&strat, &mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(x in 1u64..100, flip in any::<bool>()) {
            prop_assume!(x != 50);
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(flip as u8 + !flip as u8, 1, "exactly one branch for x={}", x);
        }
    }
}
