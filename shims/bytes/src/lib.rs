//! Vendored stand-in for the `bytes` crate: a cheaply cloneable,
//! reference-counted byte buffer with zero-copy slicing.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning and slicing share
/// the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-slice sharing this buffer's allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The contents as a plain byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    /// Prints length and a short prefix, not the whole (possibly huge) buffer.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.len().min(8);
        write!(
            f,
            "Bytes(len={}, head={:?})",
            self.len(),
            &self.as_slice()[..n]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_shares_storage() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[3, 4]);
        assert_eq!(b.len(), 6);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn equality_compares_contents() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::from(vec![0u8, 1, 2, 3]).slice(1..);
        assert_eq!(a, b);
        assert_eq!(a, vec![1u8, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_slice_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }
}
