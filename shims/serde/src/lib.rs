//! Vendored stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small JSON-centric serialization facade with the surface this
//! repository actually uses: `Serialize` / `Deserialize` traits, derive
//! macros (from the sibling `serde_derive` shim), and a [`Value`] tree that
//! the vendored `serde_json` shares. Everything round-trips through
//! [`Value`]; there is no streaming serializer.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Index, Range};

/// JSON object representation used by [`Value::Object`].
pub type Map = BTreeMap<String, Value>;

/// An in-memory JSON value, shared between `serde` and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as an `f64`; integers convert losslessly enough.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup on objects; `None` for other value kinds.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Mutable member lookup on objects; `None` for other value kinds.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(m) => m.get_mut(key),
            _ => None,
        }
    }

    /// The value as a mutable array, if it is one.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Object member assignment, `serde_json`-style: a missing key is
    /// inserted as `Null` first so `doc["k"] = v` always works on objects.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(m) => m.entry(key.to_string()).or_insert(Value::Null),
            other => panic!("cannot index {other:?} with a string key"),
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn serialize(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Deserialization helpers, mirroring `serde::de`.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// Owned deserialization marker; every [`Deserialize`] type qualifies
    /// because the shim never borrows from the input.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Serialization helpers, mirroring `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        // Only reachable from test/bench fixtures with `&'static str` fields;
        // leaking the handful of short strings involved is acceptable there.
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let mut it = arr.iter();
                Ok(($(
                    $name::deserialize(
                        it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected map as pair array"))?;
        let mut out = BTreeMap::new();
        for entry in arr {
            let pair = entry
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
            out.insert(K::deserialize(&pair[0])?, V::deserialize(&pair[1])?);
        }
        Ok(out)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Vec::<T>::deserialize(v).map(|items| items.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for Range<T> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        m.insert("start".to_string(), self.start.serialize());
        m.insert("end".to_string(), self.end.serialize());
        Value::Object(m)
    }
}

impl<T: Deserialize> Deserialize for Range<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let m = v
            .as_object()
            .ok_or_else(|| Error::custom("expected range object"))?;
        Ok(Range {
            start: T::deserialize(m.get("start").unwrap_or(&Value::Null))?,
            end: T::deserialize(m.get("end").unwrap_or(&Value::Null))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_value() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::deserialize(&s.serialize()).unwrap(), "hi");
    }

    #[test]
    fn integral_floats_accept_integer_values() {
        assert_eq!(f64::deserialize(&Value::U64(3)).unwrap(), 3.0);
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (2, 1.5)];
        assert_eq!(Vec::<(u32, f64)>::deserialize(&v.serialize()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(3u32, 0.25f64);
        assert_eq!(
            BTreeMap::<u32, f64>::deserialize(&m.serialize()).unwrap(),
            m
        );
        let r = 2u64..9;
        assert_eq!(Range::<u64>::deserialize(&r.serialize()).unwrap(), r);
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
    }

    #[test]
    fn value_accessors() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Str("v".into()));
        let obj = Value::Object(m);
        assert_eq!(obj["k"], "v");
        assert!(obj["missing"].is_null());
        assert_eq!(Value::U64(2).as_f64(), Some(2.0));
        assert_eq!(Value::F64(2.5).as_u64(), None);
    }
}
