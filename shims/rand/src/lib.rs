//! Vendored stand-in for the `rand` crate.
//!
//! Provides the surface this workspace uses: `SmallRng::seed_from_u64`,
//! `SliceRandom::shuffle`, and a small `RngCore`/`Rng` pair. The generator
//! is a splitmix64-seeded xorshift64*, deterministic across platforms.

/// Core source of randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods (subset of the real crate's `Rng`).
pub trait Rng: RngCore {
    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be non-zero");
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let mut state = splitmix64(&mut s);
            if state == 0 {
                state = 0x853c_49e6_748f_ea9b;
            }
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Randomization of slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range_u64(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut v: Vec<usize> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "a 32-element shuffle should move something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
