//! Vendored stand-in for the `rayon` crate.
//!
//! Provides the subset this workspace uses: [`join`], [`scope`], a
//! [`ThreadPool`] built via [`ThreadPoolBuilder`] whose
//! [`install`](ThreadPool::install) scopes work onto that pool, and a
//! `par_iter().map().collect()` slice subset under [`iter`] /
//! [`prelude`]. Internally it is a shared-queue pool whose waiters *help*:
//! a thread blocked on a scope pops and runs pending jobs instead of
//! sleeping, so nested `join`/`scope` calls cannot deadlock — the
//! property that makes rayon's work-stealing safe to lean on, without the
//! per-thread deque machinery.
//!
//! The global pool is sized by the `CROSSMESH_THREADS` environment
//! variable (falling back to the machine's available parallelism); a pool
//! of one thread runs every task inline on the caller, which makes
//! "1 thread" a true sequential baseline for benchmarks.
//!
//! Scope spawn and join points are `crossmesh-hb` instrumentation seams:
//! when armed, each spawned job gets a fresh pair of happens-before edge
//! ids — spawner→job (released at spawn, acquired when the job starts)
//! and job→scope-exit (released when the job finishes, acquired after the
//! scope's latch opens) — so the race detector sees fork/join ordering
//! exactly as precise per-job edges. Disarmed, the cost is one relaxed
//! atomic load per spawn.

use crossmesh_hb as hb;
use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared pool state: the job queue and the worker wake-up channel.
struct PoolState {
    /// Total concurrency of the pool (workers + the installing caller).
    threads: usize,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl PoolState {
    fn new(threads: usize) -> Self {
        PoolState {
            threads,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    fn push(&self, job: Job) {
        hb::preempt();
        self.queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push_back(job);
        self.available.notify_one();
    }

    /// Pops the most recently pushed job. Helpers blocked in a scope use
    /// this so the job they run is (almost always) their own just-spawned
    /// child: helping then nests proportionally to the *user* recursion
    /// depth, not the total task count. Popping oldest-first there lets a
    /// recursive join workload stack thousands of unrelated task frames
    /// on one thread.
    fn try_pop_newest(&self) -> Option<Job> {
        hb::preempt();
        self.queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_back()
    }
}

fn worker_loop(state: Arc<PoolState>) {
    CURRENT.with(|c| *c.borrow_mut() = Some(state.clone()));
    loop {
        let job = {
            let mut queue = state.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if state.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = state
                    .available
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

thread_local! {
    /// The pool the current thread belongs to (worker) or has installed.
    static CURRENT: std::cell::RefCell<Option<Arc<PoolState>>> =
        const { std::cell::RefCell::new(None) };
}

/// Worker threads run pending tasks inline while blocked in [`join`], so a
/// deeply recursive workload can stack many task frames on one worker; give
/// workers more headroom than the platform default.
const WORKER_STACK_BYTES: usize = 8 * 1024 * 1024;

fn spawn_worker(state: Arc<PoolState>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("crossmesh-pool-worker".into())
        .stack_size(WORKER_STACK_BYTES)
        .spawn(move || worker_loop(state))
        .expect("spawn pool worker")
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("CROSSMESH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

fn global_state() -> Arc<PoolState> {
    static GLOBAL: OnceLock<Arc<PoolState>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let threads = default_threads();
            let state = Arc::new(PoolState::new(threads));
            // The caller participates, so spawn threads - 1 workers; the
            // global pool lives for the process, its workers are detached.
            for _ in 1..threads {
                spawn_worker(state.clone());
            }
            state
        })
        .clone()
}

fn current_state() -> Arc<PoolState> {
    CURRENT
        .with(|c| c.borrow().clone())
        .unwrap_or_else(global_state)
}

/// The concurrency of the pool the current thread would submit to.
pub fn current_num_threads() -> usize {
    current_state().threads
}

/// Tracks the spawned-but-unfinished jobs of one scope, and the first
/// panic any of them raised.
struct Latch {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// job→scope-exit edge ids of every job spawned while the hb seam was
    /// engaged; the scope acquires them after the latch opens.
    hb_joins: Mutex<Vec<u64>>,
}

impl Latch {
    fn new() -> Self {
        Latch {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
            hb_joins: Mutex::new(Vec::new()),
        }
    }

    fn increment(&self) {
        *self.pending.lock().unwrap_or_else(|p| p.into_inner()) += 1;
    }

    fn decrement(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.pending.lock().unwrap_or_else(|p| p.into_inner()) == 0
    }

    fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn resume_if_panicked(&self) {
        let payload = self.panic.lock().unwrap_or_else(|p| p.into_inner()).take();
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }
}

/// Blocks until `latch` opens, running pending pool jobs while waiting so
/// nested scopes make progress instead of deadlocking.
fn help_until_done(state: &PoolState, latch: &Latch) {
    loop {
        if latch.is_done() {
            return;
        }
        if let Some(job) = state.try_pop_newest() {
            job();
            continue;
        }
        // Nothing to steal: sleep briefly; the timeout covers the race
        // where a job is pushed between the pop attempt and the wait.
        let pending = latch.pending.lock().unwrap_or_else(|p| p.into_inner());
        if *pending == 0 {
            return;
        }
        let _ = latch
            .done
            .wait_timeout(pending, Duration::from_millis(1))
            .unwrap_or_else(|p| p.into_inner());
    }
}

/// A raw pointer that may cross threads; sound because the scope it points
/// into outlives every job that dereferences it.
struct SendPtr(*const ());
unsafe impl Send for SendPtr {}

/// A scope in which tasks borrowing the enclosing stack frame may be
/// spawned; `scope` does not return until all of them have completed.
pub struct Scope<'scope> {
    state: Arc<PoolState>,
    latch: Arc<Latch>,
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("threads", &self.state.threads)
            .finish()
    }
}

impl<'scope> Scope<'scope> {
    /// Spawns a task that may borrow anything outliving the scope. On a
    /// one-thread pool the task runs inline, preserving a strictly
    /// sequential execution order.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.latch.increment();
        if self.state.threads <= 1 {
            f(self);
            self.latch.decrement();
            return;
        }
        // Fork edge: released here, acquired when the job starts on its
        // worker; the join edge runs the other way (released at job end,
        // acquired by the scope after the latch opens).
        let hb_ids = if hb::engaged() {
            let fork = hb::fresh_id();
            let join = hb::fresh_id();
            hb::release(fork);
            self.latch
                .hb_joins
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(join);
            Some((fork, join))
        } else {
            None
        };
        let latch = self.latch.clone();
        let scope_ptr = SendPtr(self as *const Scope<'scope> as *const ());
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // Force capture of the Send wrapper itself; precise capture
            // would otherwise grab only the non-Send raw pointer field.
            let scope_ptr: SendPtr = scope_ptr;
            let SendPtr(raw) = scope_ptr;
            // SAFETY: `scope` waits for this job before the Scope value
            // (and everything 'scope borrows) can be dropped.
            let scope = unsafe { &*(raw as *const Scope<'scope>) };
            if let Some((fork, _)) = hb_ids {
                hb::acquire(fork);
            }
            match catch_unwind(AssertUnwindSafe(|| f(scope))) {
                Ok(()) => {}
                Err(payload) => latch.record_panic(payload),
            }
            if let Some((_, join)) = hb_ids {
                hb::release(join);
            }
            latch.decrement();
        });
        // SAFETY: erasing 'scope to 'static is sound because the job is
        // guaranteed to finish before `scope` returns (the latch wait),
        // so no borrow is used after its referent is gone.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.state.push(job);
    }
}

/// Creates a scope on the current pool, runs `f` in it, then waits for
/// every spawned task (helping to run queued work while waiting).
/// Panics from spawned tasks are propagated after all tasks finish.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let state = current_state();
    let sc = Scope {
        state: state.clone(),
        latch: Arc::new(Latch::new()),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&sc)));
    // Even if `f` panicked, spawned jobs still borrow the stack: drain
    // them before unwinding further.
    help_until_done(&state, &sc.latch);
    // Join edges: every finished job released its id before decrementing
    // the latch, so acquiring here orders all job effects before the
    // scope's continuation.
    if hb::engaged() {
        let joins: Vec<u64> = sc
            .latch
            .hb_joins
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect();
        for join in joins {
            hb::acquire(join);
        }
    }
    match result {
        Ok(r) => {
            sc.latch.resume_if_panicked();
            r
        }
        Err(payload) => resume_unwind(payload),
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
/// `oper_a` runs on the calling thread; `oper_b` is offered to the pool.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = {
        let rb_slot = &mut rb;
        scope(|s| {
            s.spawn(move |_| *rb_slot = Some(oper_b()));
            oper_a()
        })
    };
    let rb = rb.expect("join: second operand completed without a result");
    (ra, rb)
}

/// Error building a [`ThreadPool`]; the shim never actually fails, the
/// type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicitly sized [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (machine-sized) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool concurrency; `0` means the default.
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors rayon's API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        let state = Arc::new(PoolState::new(threads));
        // The installing caller participates, so spawn threads - 1 workers.
        let workers = (1..threads).map(|_| spawn_worker(state.clone())).collect();
        Ok(ThreadPool { state, workers })
    }
}

/// An explicitly sized pool; work submitted inside
/// [`install`](ThreadPool::install) runs at this pool's concurrency.
pub struct ThreadPool {
    state: Arc<PoolState>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.state.threads)
            .finish()
    }
}

impl ThreadPool {
    /// The pool's concurrency (workers plus the installing caller).
    pub fn current_num_threads(&self) -> usize {
        self.state.threads
    }

    /// Runs `f` with this pool as the current thread's pool: every
    /// `join`/`scope`/`par_iter` inside targets it.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let previous = CURRENT.with(|c| c.borrow_mut().replace(self.state.clone()));
        struct Restore(Option<Arc<PoolState>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
        let _restore = Restore(previous);
        f()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Parallel iteration over slices: the `par_iter().map().collect()`
/// subset.
pub mod iter {
    use super::{current_state, scope};
    use std::marker::PhantomData;

    /// Types that can hand out a parallel iterator over `&self`.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by reference.
        type Item: Sync + 'data;

        /// A parallel iterator over the elements.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// Parallel iterator over a slice.
    #[derive(Debug)]
    pub struct ParIter<'data, T: Sync> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Maps each element through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, R, F>
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
                _result: PhantomData,
            }
        }
    }

    /// The mapped form of [`ParIter`]; consumed by
    /// [`collect`](ParMap::collect).
    pub struct ParMap<'data, T: Sync, R: Send, F> {
        items: &'data [T],
        f: F,
        _result: PhantomData<fn() -> R>,
    }

    impl<T: Sync, R: Send, F> std::fmt::Debug for ParMap<'_, T, R, F> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ParMap")
                .field("len", &self.items.len())
                .finish()
        }
    }

    impl<'data, T, R, F> ParMap<'data, T, R, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        /// Runs the map and collects results in input order. Order (and
        /// therefore the collected value) is independent of thread count.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let n = self.items.len();
            let threads = current_state().threads;
            let mut out: Vec<Option<R>> = Vec::with_capacity(n);
            out.resize_with(n, || None);
            if threads <= 1 || n <= 1 {
                for (slot, item) in out.iter_mut().zip(self.items) {
                    *slot = Some((self.f)(item));
                }
            } else {
                let chunk = n.div_ceil(threads * 2).max(1);
                let f = &self.f;
                scope(|s| {
                    let mut slots: &mut [Option<R>] = &mut out;
                    let mut items = self.items;
                    while !items.is_empty() {
                        let k = chunk.min(items.len());
                        let (head_slots, rest_slots) = slots.split_at_mut(k);
                        let (head_items, rest_items) = items.split_at(k);
                        slots = rest_slots;
                        items = rest_items;
                        s.spawn(move |_| {
                            for (slot, item) in head_slots.iter_mut().zip(head_items) {
                                *slot = Some(f(item));
                            }
                        });
                    }
                });
            }
            out.into_iter()
                .map(|v| v.expect("parallel map filled every slot"))
                .collect()
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn scope_runs_every_spawn() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn nested_joins_do_not_deadlock() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| fib(16)), 987);
    }

    #[test]
    fn deep_recursive_joins_stay_within_stack() {
        // ~20k tasks; helping must pop newest-first so nesting tracks the
        // recursion depth (~20) rather than the task count, else this
        // overflows the test thread's stack.
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| fib(20)), 6765);
    }

    #[test]
    fn par_map_preserves_order_across_pools() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<u64> =
                pool.install(|| items.par_iter().map(|&x| x * x).collect::<Vec<u64>>());
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn install_scopes_the_pool() {
        let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let four = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(one.install(current_num_threads), 1);
        assert_eq!(four.install(current_num_threads), 4);
        four.install(|| {
            assert_eq!(one.install(current_num_threads), 1);
            assert_eq!(current_num_threads(), 4);
        });
    }

    #[test]
    fn spawned_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            pool.install(|| {
                scope(|s| {
                    s.spawn(|_| panic!("boom"));
                });
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn one_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let main_id = std::thread::current().id();
        pool.install(|| {
            scope(|s| {
                s.spawn(move |_| {
                    assert_eq!(std::thread::current().id(), main_id);
                });
            });
        });
    }
}
