//! Determinism and cache-correctness properties of the parallel planner
//! engine: every planner must produce byte-identical plans at every pool
//! width, a plan-cache hit must replay the cold plan exactly, and changing
//! the sender exclusions must never serve a stale cached plan.

use crossmesh::core::{
    DfsPlanner, EnsemblePlanner, LoadBalancePlanner, NaivePlanner, PlanCache, Planner,
    PlannerConfig, RandomizedGreedyPlanner, ReshardingTask, SenderExclusions,
};
use crossmesh::mesh::{DeviceMesh, DimSharding, ShardingSpec};
use crossmesh::netsim::{ClusterSpec, HostId, LinkParams};
use proptest::prelude::*;

/// A random valid sharding spec of the given rank (each mesh axis shards
/// at most one tensor dimension).
fn spec_strategy(rank: usize) -> impl Strategy<Value = ShardingSpec> {
    (
        prop::option::of(0..rank),
        prop::option::of(0..rank),
        any::<bool>(),
    )
        .prop_map(move |(a0, a1, swap)| {
            let mut dims = vec![DimSharding::Replicated; rank];
            match (a0, a1) {
                (Some(d0), Some(d1)) if d0 == d1 => {
                    let axes = if swap { vec![0, 1] } else { vec![1, 0] };
                    dims[d0] = DimSharding::Sharded(axes);
                }
                (a0, a1) => {
                    if let Some(d) = a0 {
                        dims[d] = DimSharding::Sharded(vec![0]);
                    }
                    if let Some(d) = a1 {
                        dims[d] = DimSharding::Sharded(vec![1]);
                    }
                }
            }
            ShardingSpec::new(dims).expect("construction is valid by design")
        })
}

/// Random planning problem on disjoint meshes of a shared cluster.
#[derive(Debug, Clone)]
struct Problem {
    src_shape: (usize, usize),
    dst_shape: (usize, usize),
    src_spec: ShardingSpec,
    dst_spec: ShardingSpec,
    tensor: Vec<u64>,
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (2usize..=3)
        .prop_flat_map(|rank| {
            (
                (1usize..=2, 1usize..=4),
                (1usize..=3, 1usize..=4),
                spec_strategy(rank),
                spec_strategy(rank),
                prop::collection::vec(1u64..=12, rank),
            )
        })
        .prop_map(
            |(src_shape, dst_shape, src_spec, dst_spec, tensor)| Problem {
                src_shape,
                dst_shape,
                src_spec,
                dst_spec,
                tensor,
            },
        )
}

fn build(p: &Problem) -> ReshardingTask {
    let hosts = (p.src_shape.0 + p.dst_shape.0) as u32;
    let cluster = ClusterSpec::homogeneous(
        hosts,
        4,
        LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0),
    );
    let src = DeviceMesh::from_cluster(&cluster, 0, p.src_shape, "src").unwrap();
    let dst = DeviceMesh::from_cluster(&cluster, p.src_shape.0, p.dst_shape, "dst").unwrap();
    ReshardingTask::new(
        src,
        p.src_spec.clone(),
        dst,
        p.dst_spec.clone(),
        &p.tensor,
        1,
    )
    .unwrap()
}

fn config() -> PlannerConfig {
    PlannerConfig::new(crossmesh::core::CostParams {
        inter_bw: 1.0,
        intra_bw: 100.0,
        inter_latency: 0.0,
        intra_latency: 0.0,
    })
}

/// Every planner in the engine, seeded where applicable.
fn all_planners(seed: u64) -> Vec<(&'static str, Box<dyn Planner>)> {
    vec![
        (
            "naive",
            Box::new(NaivePlanner::new(config())) as Box<dyn Planner>,
        ),
        ("lpt", Box::new(LoadBalancePlanner::new(config()))),
        (
            "dfs",
            Box::new(DfsPlanner::new(config()).with_node_budget(2_000)),
        ),
        (
            "greedy",
            Box::new(
                RandomizedGreedyPlanner::new(config())
                    .with_seed(seed)
                    .with_restarts(3),
            ),
        ),
        (
            "ensemble",
            Box::new(
                EnsemblePlanner::new(config())
                    .with_greedy(RandomizedGreedyPlanner::new(config()).with_seed(seed)),
            ),
        ),
    ]
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The determinism contract: for every planner, random problem, and
    /// seed, the plan computed under a multi-thread pool is byte-identical
    /// to the one computed under a 1-thread (inline, truly sequential)
    /// pool — same assignments, bit-equal estimate.
    #[test]
    fn parallel_plans_equal_sequential_plans(p in problem_strategy(), seed in any::<u64>()) {
        let task = build(&p);
        for (name, planner) in all_planners(seed) {
            let sequential = pool(1).install(|| planner.plan(&task));
            for threads in [2usize, 4, 8] {
                let parallel = pool(threads).install(|| planner.plan(&task));
                prop_assert_eq!(
                    sequential.assignments(),
                    parallel.assignments(),
                    "{} diverged at {} threads",
                    name,
                    threads
                );
                prop_assert_eq!(
                    sequential.estimate().to_bits(),
                    parallel.estimate().to_bits(),
                    "{} estimate diverged at {} threads",
                    name,
                    threads
                );
            }
        }
    }

    /// A cache hit replays the cold plan exactly.
    #[test]
    fn cache_hit_equals_cold_plan(p in problem_strategy(), seed in any::<u64>()) {
        let task = build(&p);
        for (name, planner) in all_planners(seed) {
            let cache = PlanCache::new();
            let cold = cache.plan(planner.as_ref(), &task);
            let warm = cache.plan(planner.as_ref(), &task);
            prop_assert_eq!(
                cold.assignments(),
                warm.assignments(),
                "{} warm plan diverged",
                name
            );
            prop_assert_eq!(cold.estimate().to_bits(), warm.estimate().to_bits());
            prop_assert_eq!(cache.stats().hits, 1, "{} second call must hit", name);
        }
    }

    /// Changing the sender exclusions changes the cache key: the excluded
    /// plan is re-planned (no stale hit) and never routes through an
    /// excluded sender. The source spec is forced to full replication so
    /// excluding one host can never be data loss.
    #[test]
    fn changed_exclusions_never_serve_a_stale_plan(
        dst_spec in spec_strategy(3),
        tensor in prop::collection::vec(1u64..=12, 3),
        dead in 0u32..2,
        seed in any::<u64>(),
    ) {
        let p = Problem {
            src_shape: (2, 4),
            dst_shape: (2, 4),
            src_spec: ShardingSpec::new(vec![DimSharding::Replicated; 3]).unwrap(),
            dst_spec,
            tensor,
        };
        let task = build(&p);
        let planner = EnsemblePlanner::new(config()).with_greedy(
            RandomizedGreedyPlanner::new(config()).with_seed(seed),
        );
        let cache = PlanCache::new();

        let baseline = cache.plan(&planner, &task);
        let hits_before = cache.stats().hits;
        let excl = SenderExclusions::none().with_host(HostId(dead));
        let repaired = cache
            .plan_with_exclusions(&planner, &task, &excl)
            .expect("fully replicated source cannot lose data");
        prop_assert_eq!(
            cache.stats().hits, hits_before,
            "new exclusions must not reuse the unexcluded entry"
        );
        for a in repaired.assignments() {
            prop_assert!(
                a.sender_host != HostId(dead),
                "cached repair assigned excluded host {:?}",
                a.sender_host
            );
        }
        // The baseline entry is still served for unexcluded lookups.
        let again = cache.plan(&planner, &task);
        prop_assert_eq!(baseline.assignments(), again.assignments());
    }
}
