//! Concurrency properties of the shared plan cache: N threads hammering
//! one `PlanCache` with interleaved lookups, inserts, and invalidating
//! exclusion changes must preserve the *semantics* a serial execution
//! would produce — identical plans for identical keys, every lookup
//! accounted as exactly one hit or miss, and at least one miss (at most
//! `threads`, for raced first lookups) per distinct key.

use crossmesh::core::{
    EnsemblePlanner, PlanCache, PlannerConfig, ReshardingTask, SenderExclusions,
};
use crossmesh::mesh::DeviceMesh;
use crossmesh::models::presets;
use crossmesh::netsim::{ClusterSpec, HostId, LinkParams};
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

/// A small family of distinct planning problems sharing one cluster.
fn tasks() -> Vec<ReshardingTask> {
    let params = presets::p3_cost_params();
    let cluster = Arc::new(ClusterSpec::homogeneous(
        4,
        4,
        LinkParams::new(params.intra_bw, params.inter_bw),
    ));
    // Source specs shard only across mesh axis 1 (devices within a
    // host) or replicate, so every unit keeps sender replicas on every
    // source host and excluding one host can never lose data.
    let cases: &[(&str, &str, &[u64])] = &[
        ("RS1R", "S0RR", &[16, 8, 8]),
        ("S1RR", "RS0R", &[16, 8, 8]),
        ("RS1R", "S0RR", &[32, 8, 8]),
        ("RRS1", "S0RR", &[8, 8, 16]),
    ];
    cases
        .iter()
        .map(|(src_spec, dst_spec, shape)| {
            let src = DeviceMesh::from_cluster(&cluster, 0, (2, 4), "src").expect("src fits");
            let dst = DeviceMesh::from_cluster(&cluster, 2, (2, 4), "dst").expect("dst fits");
            ReshardingTask::new(
                src,
                src_spec.parse().expect("valid spec"),
                dst,
                dst_spec.parse().expect("valid spec"),
                shape,
                4,
            )
            .expect("task builds")
        })
        .collect()
}

fn planner() -> EnsemblePlanner {
    EnsemblePlanner::new(PlannerConfig::new(presets::p3_cost_params()))
}

/// The serial reference: plan every (task, exclusion) pair once cold,
/// once warm, and record the assignments the cache must reproduce.
fn serial_reference(
    tasks: &[ReshardingTask],
    exclusions: &[SenderExclusions],
) -> Vec<Vec<crossmesh::core::Assignment>> {
    let planner = planner();
    let cache = PlanCache::new();
    let mut plans = Vec::new();
    for task in tasks {
        for excl in exclusions {
            let plan = cache
                .plan_with_exclusions(&planner, task, excl)
                .expect("replicated sources survive one exclusion");
            plans.push(plan.assignments().to_vec());
        }
    }
    plans
}

#[test]
fn concurrent_hammering_matches_serial_hit_miss_semantics() {
    let tasks = Arc::new(tasks());
    let exclusions = [
        SenderExclusions::none(),
        SenderExclusions::none().with_host(HostId(0)),
    ];
    let reference = serial_reference(&tasks, &exclusions);
    let distinct_keys = tasks.len() * exclusions.len();

    for threads in [2usize, 4, 8] {
        let cache = Arc::new(PlanCache::new());
        let planner = Arc::new(planner());
        let rounds = 6;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let planner = Arc::clone(&planner);
                let tasks = Arc::clone(&tasks);
                let exclusions = exclusions.clone();
                let reference = reference.clone();
                thread::spawn(move || {
                    // Each thread walks the key space from a different
                    // offset so lookups and inserts interleave heavily.
                    for r in 0..rounds {
                        for i in 0..tasks.len() * exclusions.len() {
                            let k = (i + t + r) % (tasks.len() * exclusions.len());
                            let (ti, ei) = (k / exclusions.len(), k % exclusions.len());
                            let plan = cache
                                .plan_with_exclusions(&*planner, &tasks[ti], &exclusions[ei])
                                .expect("no data loss");
                            assert_eq!(
                                plan.assignments(),
                                &reference[k][..],
                                "thread {t} got a plan differing from the serial reference"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no worker panicked");
        }

        let stats = cache.stats();
        let lookups = (threads * rounds * distinct_keys) as u64;
        assert_eq!(
            stats.hits + stats.misses,
            lookups,
            "every lookup is exactly one hit or one miss"
        );
        // Serial semantics: one miss per distinct key. Concurrency allows
        // raced duplicate misses, but never more than one per thread per
        // key, and never fewer than the serial count.
        assert!(
            (distinct_keys as u64..=(distinct_keys * threads) as u64).contains(&stats.misses),
            "misses {} outside [{}, {}] at {} threads",
            stats.misses,
            distinct_keys,
            distinct_keys * threads,
            threads
        );
        assert_eq!(stats.entries, distinct_keys, "one entry per distinct key");
    }
}

#[test]
fn invalidation_under_concurrency_never_serves_an_excluded_sender() {
    // Threads alternate between planning with no exclusions and planning
    // with host 0 excluded; every returned plan must honour the exclusion
    // it asked for, no matter how the cache interleaves.
    let tasks = Arc::new(tasks());
    let cache = Arc::new(PlanCache::new());
    let planner = Arc::new(planner());
    let dead = HostId(0);
    let handles: Vec<_> = (0..4usize)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let planner = Arc::clone(&planner);
            let tasks = Arc::clone(&tasks);
            thread::spawn(move || {
                for r in 0..8 {
                    let task = &tasks[(t + r) % tasks.len()];
                    if (t + r) % 2 == 0 {
                        let excl = SenderExclusions::none().with_host(dead);
                        let plan = cache
                            .plan_with_exclusions(&*planner, task, &excl)
                            .expect("replicas survive");
                        assert!(
                            plan.assignments().iter().all(|a| a.sender_host != dead),
                            "excluded host used as sender"
                        );
                    } else {
                        let _ = cache.plan(&*planner, task);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no worker panicked");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized schedules: arbitrary per-thread key orders still yield
    /// serially-identical plans and fully-accounted lookup counters.
    #[test]
    fn random_schedules_preserve_cache_semantics(
        orders in prop::collection::vec(
            prop::collection::vec(0usize..8, 4..16),
            2..5,
        )
    ) {
        let tasks = Arc::new(tasks());
        let exclusions = [
            SenderExclusions::none(),
            SenderExclusions::none().with_host(HostId(0)),
        ];
        let reference = serial_reference(&tasks, &exclusions);
        let cache = Arc::new(PlanCache::new());
        let planner = Arc::new(planner());
        let mut total_lookups = 0u64;
        let handles: Vec<_> = orders
            .into_iter()
            .map(|order| {
                total_lookups += order.len() as u64;
                let cache = Arc::clone(&cache);
                let planner = Arc::clone(&planner);
                let tasks = Arc::clone(&tasks);
                let exclusions = exclusions.clone();
                let reference = reference.clone();
                thread::spawn(move || {
                    for k in order {
                        let (ti, ei) = (k / exclusions.len(), k % exclusions.len());
                        let plan = cache
                            .plan_with_exclusions(&*planner, &tasks[ti], &exclusions[ei])
                            .expect("no data loss");
                        assert_eq!(plan.assignments(), &reference[k][..]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no worker panicked");
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, total_lookups);
        prop_assert!(stats.entries <= 8);
    }
}
