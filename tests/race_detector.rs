//! End-to-end properties of the happens-before race detector
//! (`check::race`) and the seeded schedule fuzzer (`check::schedules`):
//!
//! * the clean concurrent suite stays silent at pool widths 1, 4, and 8
//!   for arbitrary perturbation seeds — no false positives;
//! * every seeded defect class convicts under its expected `race.*` rule
//!   on *every* seed of a 32-seed sweep — no false negatives, because the
//!   detector keys on the absence of happens-before edges, not on the
//!   interleaving the schedule happened to produce;
//! * the real concurrent core — the threaded runtime backend and the MoE
//!   all-to-all dataplane — runs race-clean under perturbation while its
//!   byte-identical equivalence oracles keep passing.
//!
//! Case counts are modest: every case spawns real OS threads and the
//! armed sections serialize on the seam's test lock.

use crossmesh::check::race::{run_clean, run_defect, Defect, RaceDetector};
use crossmesh::check::schedules::sweep;
use crossmesh::hb;
use crossmesh::mesh::DeviceMesh;
use crossmesh::moe::{execute_reference, execute_threaded, A2aTask, RoutingConfig};
use crossmesh::netsim::{Backend, ClusterSpec, LinkParams, TaskGraph, Work};
use crossmesh::runtime::ThreadedBackend;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Properly synchronized pool workloads must be silent at every
    /// width, whatever the perturbation seed.
    #[test]
    fn clean_suite_is_silent_at_every_width(seed in 0u64..1024) {
        for width in [1usize, 4, 8] {
            let diags = run_clean(width, seed);
            prop_assert!(diags.is_empty(), "width {width} seed {seed}: {diags:?}");
        }
    }

    /// A defect must convict whatever the seed — spot-check random seeds
    /// beyond the dense sweep below.
    #[test]
    fn defects_convict_on_arbitrary_seeds(seed in 0u64..4096, which in 0usize..3) {
        let defect = Defect::all()[which];
        let diags = run_defect(defect, seed);
        prop_assert!(
            diags.iter().any(|d| defect.expected_rules().contains(&d.rule)),
            "defect {} seed {seed}: {diags:?}",
            defect.name()
        );
    }
}

/// The acceptance sweep: three defect classes, 32 seeds each, 100%
/// conviction under the matching rule.
#[test]
fn every_defect_convicts_across_a_32_seed_sweep() {
    for defect in Defect::all() {
        let report = sweep(0, 32, |seed| (run_defect(defect, seed), None));
        let matching = report
            .outcomes
            .iter()
            .filter(|o| {
                o.diagnostics
                    .iter()
                    .any(|d| defect.expected_rules().contains(&d.rule))
            })
            .count();
        assert_eq!(
            matching,
            32,
            "defect {} convicted {matching}/32 seeds",
            defect.name()
        );
        assert!(report.oracle_failures().is_empty());
    }
}

/// The threaded runtime backend, fully armed and perturbed: a
/// cross-host diamond of computes and flows must complete with zero
/// race findings — every dispatch, ack decrement, and frame delivery is
/// covered by a declared edge.
#[test]
fn threaded_backend_is_race_clean_under_perturbation() {
    let cluster = ClusterSpec::homogeneous(2, 2, LinkParams::new(100e9, 10e9));
    let backends = [
        (ThreadedBackend::threads(), 0u64),
        (ThreadedBackend::threads(), 3),
        (ThreadedBackend::threads(), 11),
        (ThreadedBackend::tcp(), 5),
    ];
    for (backend, seed) in backends {
        let _serial = hb::test_lock();
        let detector = Arc::new(RaceDetector::new());
        let _armed = hb::install(detector.clone());
        let _fuzzing = hb::fuzz(seed);

        let mut g = TaskGraph::new();
        let a = g.add(Work::compute(cluster.device(0, 0), 1e-4), []);
        let b = g.add(Work::compute(cluster.device(1, 0), 1e-4), []);
        let f1 = g.add(
            Work::flow(cluster.device(0, 0), cluster.device(1, 1), (1 << 16) as f64),
            [a],
        );
        let f2 = g.add(
            Work::flow(cluster.device(1, 0), cluster.device(0, 1), (1 << 16) as f64),
            [b],
        );
        let join = g.add(Work::Marker, [f1, f2]);
        let c = g.add(Work::compute(cluster.device(0, 1), 1e-4), [join]);
        let trace = backend.execute(&cluster, &g).expect("armed run completes");
        assert!(trace.makespan() > 0.0);
        assert!(g.len() == 6 && c.0 == 5);

        assert!(detector.events() > 0, "the runtime emitted edges");
        let diags = detector.drain_diagnostics();
        assert!(diags.is_empty(), "seed {seed}: {diags:?}");
    }
}

/// The MoE all-to-all dataplane, armed and perturbed: byte-identical to
/// the sequential reference at pool width 4, with zero race findings on
/// the declared destination-buffer access points.
#[test]
fn moe_dataplane_is_race_clean_and_byte_identical() {
    let c = ClusterSpec::homogeneous(4, 2, LinkParams::new(100.0, 1.0));
    let tokens = DeviceMesh::from_cluster(&c, 0, (2, 2), "tokens").expect("tokens mesh");
    let experts = DeviceMesh::from_cluster(&c, 2, (2, 2), "experts").expect("experts mesh");
    let cfg = RoutingConfig {
        tokens_per_device: 16,
        token_bytes: 3,
        skew: 1.5,
        seed: 11,
        ..RoutingConfig::default()
    };
    let a2a = A2aTask::dispatch(&tokens, &experts, &cfg.bytes_matrix(4, 4));
    let reference = execute_reference(&a2a).expect("reference executes");

    for seed in [0u64, 7] {
        let _serial = hb::test_lock();
        let detector = Arc::new(RaceDetector::new());
        let _armed = hb::install(detector.clone());
        let _fuzzing = hb::fuzz(seed);
        let threaded = execute_threaded(&a2a, 4).expect("threaded executes");
        assert_eq!(threaded, reference, "seed {seed}: byte oracle diverged");
        let diags = detector.drain_diagnostics();
        assert!(diags.is_empty(), "seed {seed}: {diags:?}");
    }
}
