//! Cross-backend equivalence: the threaded runtime must agree with the
//! in-process data plane on *placement* and with the task graph on
//! *ordering*, for random resharding problems.
//!
//! Two properties:
//!
//! * [`threaded_dataflow_matches_dataplane`] — executing a plan with real
//!   payloads across threads ([`runtime::execute_plan`]) delivers exactly
//!   the destination bytes the sequential data plane
//!   (`core::dataplane::execute_and_verify`) produces;
//! * [`threaded_trace_respects_dependencies`] — executing the lowered task
//!   graph on the threaded [`Backend`] yields a trace whose happens-before
//!   edges follow the graph's dependencies, with the same cross-host byte
//!   accounting as the simulator.
//! * [`a2a_threaded_matches_reference`] — the MoE all-to-all data plane
//!   delivers byte-identical expert shards whether run sequentially or on
//!   a worker pool of any width, with or without a seeded fault schedule.
//!
//! Case counts are modest: every case spawns real OS threads.

use crossmesh::core::{EnsemblePlanner, NaivePlanner, Planner, PlannerConfig, ReshardingTask};
use crossmesh::faults::{FaultEvent, FaultSchedule};
use crossmesh::mesh::{DeviceMesh, DimSharding, ShardingSpec};
use crossmesh::moe::{execute_reference, execute_threaded_with_faults, A2aTask, RoutingConfig};
use crossmesh::netsim::{Backend, ClusterSpec, LinkParams, SimBackend, TaskGraph};
use crossmesh::runtime::{execute_plan, ThreadedBackend};
use proptest::prelude::*;

/// A random valid sharding spec of the given rank (mirrors
/// `tests/properties.rs`).
fn spec_strategy(rank: usize) -> impl Strategy<Value = ShardingSpec> {
    (
        prop::option::of(0..rank),
        prop::option::of(0..rank),
        any::<bool>(),
    )
        .prop_map(move |(a0, a1, swap)| {
            let mut dims = vec![DimSharding::Replicated; rank];
            match (a0, a1) {
                (Some(d0), Some(d1)) if d0 == d1 => {
                    let axes = if swap { vec![0, 1] } else { vec![1, 0] };
                    dims[d0] = DimSharding::Sharded(axes);
                }
                (a0, a1) => {
                    if let Some(d) = a0 {
                        dims[d] = DimSharding::Sharded(vec![0]);
                    }
                    if let Some(d) = a1 {
                        dims[d] = DimSharding::Sharded(vec![1]);
                    }
                }
            }
            ShardingSpec::new(dims).expect("construction is valid by design")
        })
}

#[derive(Debug, Clone)]
struct Problem {
    src_shape: (usize, usize),
    dst_shape: (usize, usize),
    src_spec: ShardingSpec,
    dst_spec: ShardingSpec,
    tensor: Vec<u64>,
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (1usize..=3)
        .prop_flat_map(|rank| {
            (
                (1usize..=2, 1usize..=4),
                (1usize..=2, 1usize..=4),
                spec_strategy(rank),
                spec_strategy(rank),
                prop::collection::vec(1u64..=12, rank),
            )
        })
        .prop_map(
            |(src_shape, dst_shape, src_spec, dst_spec, tensor)| Problem {
                src_shape,
                dst_shape,
                src_spec,
                dst_spec,
                tensor,
            },
        )
}

fn build(p: &Problem) -> (ClusterSpec, ReshardingTask) {
    let hosts = (p.src_shape.0 + p.dst_shape.0) as u32;
    let cluster = ClusterSpec::homogeneous(
        hosts,
        4,
        LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0),
    );
    let src = DeviceMesh::from_cluster(&cluster, 0, p.src_shape, "src").unwrap();
    let dst = DeviceMesh::from_cluster(&cluster, p.src_shape.0, p.dst_shape, "dst").unwrap();
    let task = ReshardingTask::new(
        src,
        p.src_spec.clone(),
        dst,
        p.dst_spec.clone(),
        &p.tensor,
        1,
    )
    .unwrap();
    (cluster, task)
}

fn config() -> PlannerConfig {
    PlannerConfig::new(crossmesh::core::CostParams {
        inter_bw: 1.0,
        intra_bw: 100.0,
        inter_latency: 0.0,
        intra_latency: 0.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Threaded plan execution delivers destination bytes identical to the
    /// sequential data plane, for every planner.
    #[test]
    fn threaded_dataflow_matches_dataplane(p in problem_strategy()) {
        let (_, task) = build(&p);
        for planner in [
            Box::new(NaivePlanner::new(config())) as Box<dyn Planner>,
            Box::new(EnsemblePlanner::new(config())),
        ] {
            let plan = planner.plan(&task);
            let sequential = crossmesh::core::dataplane::execute_and_verify(&plan)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", planner.name())))?;
            let threaded = execute_plan(&plan)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", planner.name())))?;
            // Same logical payload volume and byte-identical destinations.
            prop_assert_eq!(threaded.delivered_bytes, sequential.delivered_bytes);
            prop_assert_eq!(&threaded.destination, &sequential.destination);
        }
    }

    /// The threaded backend's trace honours every dependency edge of the
    /// lowered graph on one wall clock, and accounts cross-host bytes
    /// exactly like the simulator.
    #[test]
    fn threaded_trace_respects_dependencies(p in problem_strategy()) {
        let (cluster, task) = build(&p);
        let plan = EnsemblePlanner::new(config()).plan(&task);
        let mut graph = TaskGraph::new();
        let lowered = plan.lower(&mut graph, &[]);

        let sim_trace = SimBackend.execute(&cluster, &graph).unwrap();
        let trace = ThreadedBackend::threads().execute(&cluster, &graph).unwrap();
        for (id, t) in graph.iter() {
            let iv = trace.interval(id);
            prop_assert!(iv.finish >= iv.start, "task {} runs backwards", id);
            for dep in &t.deps {
                prop_assert!(
                    trace.interval(*dep).finish <= iv.start,
                    "dependency {} of {} finished after it started",
                    dep,
                    id
                );
            }
        }
        prop_assert!(trace.interval(lowered.done).finish <= trace.makespan() + 1e-12);
        if !graph.is_empty() {
            prop_assert!(trace.makespan() >= 0.0);
        }
        // Byte accounting is derived from the graph, so both backends must
        // agree to the bit.
        prop_assert_eq!(
            trace.usage().total_cross_host_bytes(),
            sim_trace.usage().total_cross_host_bytes()
        );
    }

    /// The MoE all-to-all data plane is pool-width invariant: every expert
    /// shard arrives byte-identically at pool widths 1 and 4, both clean
    /// and under a seeded flow-drop fault schedule (drops are rolled per
    /// unit task, so retries cannot depend on worker interleaving).
    #[test]
    fn a2a_threaded_matches_reference(
        hosts_per_side in 1u32..=2,
        devices in 1u32..=3,
        tokens in 1u64..=24,
        token_bytes in 1u64..=8,
        skew in 0.0f64..2.5,
        seed in 0u64..1024,
    ) {
        let cluster = ClusterSpec::homogeneous(
            2 * hosts_per_side,
            devices,
            LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0),
        );
        let shape = (hosts_per_side as usize, devices as usize);
        let tokens_mesh = DeviceMesh::from_cluster(&cluster, 0, shape, "tokens").unwrap();
        let experts_mesh =
            DeviceMesh::from_cluster(&cluster, shape.0, shape, "experts").unwrap();
        let routing = RoutingConfig {
            tokens_per_device: tokens,
            token_bytes,
            skew,
            seed,
            ..RoutingConfig::default()
        };
        let n = shape.0 * shape.1;
        let bytes = routing.bytes_matrix(n, n);
        let a2a = A2aTask::dispatch(&tokens_mesh, &experts_mesh, &bytes);

        let reference = execute_reference(&a2a)
            .map_err(|e| TestCaseError::fail(format!("reference: {e}")))?;
        prop_assert_eq!(reference.delivered_bytes, a2a.total_bytes());
        let faults = FaultSchedule::new(seed)
            .with_event(FaultEvent::FlowDrop { prob: 0.2 })
            .with_retry_policy(6, 1e-3);
        for pool in [1usize, 4] {
            let clean = execute_threaded_with_faults(&a2a, pool, None)
                .map_err(|e| TestCaseError::fail(format!("pool {pool}: {e}")))?;
            prop_assert_eq!(&clean, &reference, "pool {} diverged", pool);
            let faulty = execute_threaded_with_faults(&a2a, pool, Some(&faults))
                .map_err(|e| TestCaseError::fail(format!("pool {pool} faults: {e}")))?;
            prop_assert_eq!(&faulty, &reference, "pool {} with faults diverged", pool);
        }
    }
}
