//! Observability integration properties: the unified timeline export is
//! deterministic and backend-agnostic (one JSON schema whether the run
//! came from the simulator or the threaded runtime), and observers are
//! passive — installing a collector never changes planner output at any
//! pool width.

use crossmesh::core::{EnsemblePlanner, Planner, PlannerConfig, ReshardingTask};
use crossmesh::mesh::{DeviceMesh, ShardingSpec};
use crossmesh::netsim::{Backend, ClusterSpec, LinkParams, SimBackend, TaskGraph};
use crossmesh::obs::{self, export::RunKind, export::TraceExport, CountingCollector};
use crossmesh::runtime::ThreadedBackend;
use proptest::prelude::*;
use std::sync::Arc;

fn config() -> PlannerConfig {
    PlannerConfig::new(crossmesh::core::CostParams {
        inter_bw: 1.0,
        intra_bw: 100.0,
        inter_latency: 0.0,
        intra_latency: 0.0,
    })
}

/// A small two-host → two-host resharding task on `cluster`.
fn small_task(cluster: &ClusterSpec) -> ReshardingTask {
    let src = DeviceMesh::from_cluster(cluster, 0, (2, 2), "src").expect("src fits");
    let dst = DeviceMesh::from_cluster(cluster, 2, (2, 2), "dst").expect("dst fits");
    ReshardingTask::new(
        src,
        "S0R".parse::<ShardingSpec>().expect("valid"),
        dst,
        "RS1".parse::<ShardingSpec>().expect("valid"),
        &[64, 64],
        4,
    )
    .expect("task builds")
}

/// Lowers the plan for [`small_task`] and executes it on `backend`,
/// returning the rendered unified export (with a counter track so every
/// Chrome phase — M, X, i, C — is present).
fn export_on(backend: &dyn Backend) -> String {
    let cluster = ClusterSpec::homogeneous(4, 2, LinkParams::new(100.0, 1.0));
    let task = small_task(&cluster);
    let plan = EnsemblePlanner::new(config()).plan(&task);
    let mut graph = TaskGraph::new();
    plan.lower(&mut graph, &[]);
    let trace = backend.execute(&cluster, &graph).expect("run executes");
    let mut export = TraceExport::new();
    export.push_run(&graph, &trace, &cluster, RunKind::Primary, 0.0);
    export.add_counter("comm.inflight_flows", &[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
    export.render()
}

/// Golden-schema test: one sim run and one threads-backend run render
/// into the same JSON schema (same phase set, same key set per phase),
/// and both validate as Perfetto-loadable documents.
#[test]
fn unified_export_shares_one_schema_across_backends() {
    let sim = export_on(&SimBackend);
    let threads = export_on(&ThreadedBackend::threads());
    let sim_summary = obs::export::validate(&sim).expect("sim export validates");
    let threads_summary = obs::export::validate(&threads).expect("threads export validates");
    assert!(sim_summary.events > 0 && threads_summary.events > 0);
    assert!(
        sim_summary.schema_matches(&threads_summary),
        "sim and threads exports diverged:\n  sim: {sim_summary:?}\n  threads: {threads_summary:?}"
    );
}

/// Determinism: the simulator side of the export is byte-stable — same
/// plan, same virtual trace, same rendered bytes, run after run.
#[test]
fn sim_export_render_is_byte_stable() {
    let first = export_on(&SimBackend);
    let second = export_on(&SimBackend);
    assert_eq!(
        first, second,
        "sim export must be byte-identical run-to-run"
    );
}

/// A compact random planning problem: mesh shapes plus one of a few
/// sharding-spec pairs.
fn problem_strategy() -> impl Strategy<Value = ((usize, usize), (usize, usize), usize)> {
    (
        (1usize..=2, 1usize..=3),
        (1usize..=2, 1usize..=3),
        0usize..4,
    )
}

fn spec_pair(which: usize) -> (ShardingSpec, ShardingSpec) {
    let parse = |s: &str| s.parse::<ShardingSpec>().expect("valid spec");
    match which {
        0 => (parse("S0R"), parse("RS1")),
        1 => (parse("RR"), parse("S01R")),
        2 => (parse("S0S1"), parse("RR")),
        _ => (parse("RS0"), parse("S1R")),
    }
}

fn build(src_shape: (usize, usize), dst_shape: (usize, usize), which: usize) -> ReshardingTask {
    let hosts = (src_shape.0 + dst_shape.0) as u32;
    let cluster = ClusterSpec::homogeneous(
        hosts,
        4,
        LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0),
    );
    let src = DeviceMesh::from_cluster(&cluster, 0, src_shape, "src").expect("src fits");
    let dst = DeviceMesh::from_cluster(&cluster, src_shape.0, dst_shape, "dst").expect("dst fits");
    let (src_spec, dst_spec) = spec_pair(which);
    ReshardingTask::new(src, src_spec, dst, dst_spec, &[48, 48], 1).expect("task builds")
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The enabled-vs-disabled half of the determinism contract: for a
    /// random problem, the plan computed with a collector installed is
    /// byte-identical (same assignments, bit-equal estimate) to the plan
    /// computed with no collector, at 1-thread and 4-thread pools alike.
    #[test]
    fn collector_never_changes_planner_output(
        (src_shape, dst_shape, which) in problem_strategy(),
    ) {
        let task = build(src_shape, dst_shape, which);
        let planner = EnsemblePlanner::new(config());

        let baseline = pool(1).install(|| planner.plan(&task));

        // Serialise against other tests that install process-global
        // collectors while we hold one installed.
        let _serial = obs::collect::test_lock();
        let counting = Arc::new(CountingCollector::new());
        let _guard = obs::install(counting.clone());
        for threads in [1usize, 4] {
            let observed = pool(threads).install(|| planner.plan(&task));
            prop_assert_eq!(
                baseline.assignments(),
                observed.assignments(),
                "assignments diverged with a collector installed at {} threads",
                threads
            );
            prop_assert_eq!(
                baseline.estimate().to_bits(),
                observed.estimate().to_bits(),
                "estimate diverged with a collector installed at {} threads",
                threads
            );
        }
        prop_assert!(
            counting.total() > 0,
            "the collector must observe planner spans/events"
        );
    }
}
