//! Fault-tolerance properties over the whole stack: fault injection is
//! deterministic on the simulator, and sender-crash recovery via
//! [`Plan::repair`] stays byte-exact on both data planes.
//!
//! Test names end in `_sim` / `_threads` so CI can run the two backend
//! families separately (`cargo test --test fault_tolerance -- sim`).

use crossmesh::core::{
    dataplane, EnsemblePlanner, NaivePlanner, Planner, PlannerConfig, ReshardingTask,
    SenderExclusions,
};
use crossmesh::faults::{FaultEvent, FaultInjectable, FaultSchedule};
use crossmesh::mesh::{DeviceMesh, DimSharding, ShardingSpec};
use crossmesh::netsim::{ClusterSpec, HostId, LinkParams, SimBackend, TaskGraph, Work};
use proptest::prelude::*;
use std::collections::BTreeSet;

const HOSTS: u32 = 3;
const DEVICES_PER_HOST: u32 = 2;

fn sim_cluster() -> ClusterSpec {
    ClusterSpec::homogeneous(
        HOSTS,
        DEVICES_PER_HOST,
        LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0),
    )
}

/// One node of a random task graph, devices addressed flat in
/// `0..HOSTS * DEVICES_PER_HOST`.
#[derive(Debug, Clone)]
enum Node {
    Flow { src: u32, dst: u32, bytes: f64 },
    Compute { dev: u32, secs: f64 },
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let devices = HOSTS * DEVICES_PER_HOST;
    prop_oneof![
        (0..devices, 1..devices, 0.5f64..16.0).prop_map(move |(src, off, bytes)| Node::Flow {
            src,
            dst: (src + off) % devices,
            bytes,
        }),
        (0..devices, 0.01f64..1.0).prop_map(|(dev, secs)| Node::Compute { dev, secs }),
    ]
}

/// Random DAG: each node depends on up to two earlier nodes (the raw
/// `u64`s pick which, modulo the node's index).
fn graph_strategy() -> impl Strategy<Value = Vec<(Node, Vec<u64>)>> {
    prop::collection::vec(
        (node_strategy(), prop::collection::vec(any::<u64>(), 0..=2)),
        1..12,
    )
}

fn build_graph(c: &ClusterSpec, nodes: &[(Node, Vec<u64>)]) -> TaskGraph {
    let mut g = TaskGraph::new();
    let mut ids = Vec::new();
    for (i, (node, deps)) in nodes.iter().enumerate() {
        let dev = |flat: u32| c.device(flat / DEVICES_PER_HOST, flat % DEVICES_PER_HOST);
        let work = match *node {
            Node::Flow { src, dst, bytes } => Work::flow(dev(src), dev(dst), bytes),
            Node::Compute { dev: d, secs } => Work::compute(dev(d), secs),
        };
        let deps: BTreeSet<_> = if i == 0 {
            BTreeSet::new()
        } else {
            deps.iter().map(|d| ids[(d % i as u64) as usize]).collect()
        };
        ids.push(g.add(work, deps));
    }
    g
}

fn event_strategy() -> impl Strategy<Value = FaultEvent> {
    let devices = HOSTS * DEVICES_PER_HOST;
    prop_oneof![
        (0..HOSTS, 0.0f64..2.0).prop_map(|(host, at)| FaultEvent::HostCrash { host, at }),
        (0..HOSTS, 0.05f64..1.0, 0.0f64..1.0, 1.0f64..5.0).prop_map(
            |(host, factor, from, until)| FaultEvent::LinkDegrade {
                host,
                factor,
                from,
                until
            }
        ),
        (0..devices, 1.0f64..4.0)
            .prop_map(|(device, slowdown)| FaultEvent::Straggler { device, slowdown }),
        (0.0f64..0.9).prop_map(|prob| FaultEvent::FlowDrop { prob }),
    ]
}

fn schedule_strategy() -> impl Strategy<Value = FaultSchedule> {
    (any::<u64>(), prop::collection::vec(event_strategy(), 0..4)).prop_map(|(seed, events)| {
        events
            .into_iter()
            .fold(FaultSchedule::new(seed), |s, e| s.with_event(e))
    })
}

/// A sharding spec whose host axis (mesh axis 0) is unused, so every
/// slice is replicated across all source hosts — the recoverable regime.
fn replicated_spec_strategy(rank: usize) -> impl Strategy<Value = ShardingSpec> {
    prop::option::of(0..rank).prop_map(move |sharded| {
        let mut dims = vec![DimSharding::Replicated; rank];
        if let Some(d) = sharded {
            dims[d] = DimSharding::Sharded(vec![1]);
        }
        ShardingSpec::new(dims).expect("construction is valid by design")
    })
}

/// Any valid spec for the destination side.
fn dst_spec_strategy(rank: usize) -> impl Strategy<Value = ShardingSpec> {
    (prop::option::of(0..rank), prop::option::of(0..rank)).prop_map(move |(a0, a1)| {
        let mut dims = vec![DimSharding::Replicated; rank];
        if let (Some(d0), Some(d1)) = (a0, a1) {
            if d0 == d1 {
                dims[d0] = DimSharding::Sharded(vec![0, 1]);
                return ShardingSpec::new(dims).expect("valid");
            }
        }
        if let Some(d) = a0 {
            dims[d] = DimSharding::Sharded(vec![0]);
        }
        if let Some(d) = a1 {
            dims[d] = DimSharding::Sharded(vec![1]);
        }
        ShardingSpec::new(dims).expect("valid")
    })
}

/// Random recoverable problem: the source mesh spans two hosts with every
/// slice held on both, so crashing one sender host leaves a replica.
#[derive(Debug, Clone)]
struct Recoverable {
    src_cols: usize,
    dst_shape: (usize, usize),
    src_spec: ShardingSpec,
    dst_spec: ShardingSpec,
    tensor: Vec<u64>,
}

fn recoverable_strategy() -> impl Strategy<Value = Recoverable> {
    (1usize..=3)
        .prop_flat_map(|rank| {
            (
                1usize..=3,
                (1usize..=2, 1usize..=4),
                replicated_spec_strategy(rank),
                dst_spec_strategy(rank),
                prop::collection::vec(1u64..=12, rank),
            )
        })
        .prop_map(
            |(src_cols, dst_shape, src_spec, dst_spec, tensor)| Recoverable {
                src_cols,
                dst_shape,
                src_spec,
                dst_spec,
                tensor,
            },
        )
}

fn build_recoverable(p: &Recoverable) -> (ClusterSpec, ReshardingTask) {
    let hosts = (2 + p.dst_shape.0) as u32;
    let cluster = ClusterSpec::homogeneous(
        hosts,
        4,
        LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0),
    );
    let src = DeviceMesh::from_cluster(&cluster, 0, (2, p.src_cols), "src").unwrap();
    let dst = DeviceMesh::from_cluster(&cluster, 2, p.dst_shape, "dst").unwrap();
    let task = ReshardingTask::new(
        src,
        p.src_spec.clone(),
        dst,
        p.dst_spec.clone(),
        &p.tensor,
        1,
    )
    .unwrap();
    (cluster, task)
}

fn config() -> PlannerConfig {
    PlannerConfig::new(crossmesh::core::CostParams {
        inter_bw: 1.0,
        intra_bw: 100.0,
        inter_latency: 0.0,
        intra_latency: 0.0,
    })
}

/// Repairs around a crash of source host 0 and checks no excluded sender
/// survives in the patched plan.
fn repaired_plan<'t>(
    task: &'t ReshardingTask,
    planner: &dyn Planner,
) -> Result<crossmesh::core::Plan<'t>, TestCaseError> {
    let plan = planner.plan(task);
    let exclusions = SenderExclusions::for_hosts([HostId(0)]);
    let repaired = plan
        .repair(&exclusions)
        .map_err(|e| TestCaseError::fail(format!("{}: {e}", planner.name())))?;
    for a in repaired.assignments() {
        prop_assert!(
            a.sender_host != HostId(0),
            "excluded sender survived repair"
        );
    }
    Ok(repaired)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The same seed and schedule replay to an identical trace — the
    /// determinism guarantee that makes fault scenarios debuggable.
    #[test]
    fn same_seed_and_schedule_replay_identically_sim(
        nodes in graph_strategy(),
        schedule in schedule_strategy(),
    ) {
        let c = sim_cluster();
        let g = build_graph(&c, &nodes);
        let first = SimBackend.execute_with_faults(&c, &g, &schedule).unwrap();
        let second = SimBackend.execute_with_faults(&c, &g, &schedule).unwrap();
        prop_assert_eq!(first, second);
    }

    /// With every slice replicated across both source hosts, crashing one
    /// sender host is always recoverable, and the repaired plan still
    /// delivers every destination tile byte-exactly (sequential data
    /// plane).
    #[test]
    fn crashed_sender_repair_is_byte_exact_sim(p in recoverable_strategy()) {
        let (_, task) = build_recoverable(&p);
        for planner in [
            Box::new(NaivePlanner::new(config())) as Box<dyn Planner>,
            Box::new(EnsemblePlanner::new(config())),
        ] {
            let repaired = repaired_plan(&task, &*planner)?;
            let report = dataplane::execute_and_verify(&repaired)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", planner.name())))?;
            prop_assert!(report.delivered_bytes >= task.total_bytes());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same repaired plans stay byte-exact on the threaded runtime
    /// data plane (real payloads over channels).
    #[test]
    fn crashed_sender_repair_is_byte_exact_threads(p in recoverable_strategy()) {
        let (_, task) = build_recoverable(&p);
        let repaired = repaired_plan(&task, &EnsemblePlanner::new(config()))?;
        let report = crossmesh::runtime::execute_plan(&repaired)
            .map_err(|e| TestCaseError::fail(format!("threaded: {e}")))?;
        prop_assert!(report.delivered_bytes >= task.total_bytes());
    }
}

/// Crashing the only holder of a slice is data loss, not a bad plan.
#[test]
fn losing_every_replica_is_data_loss_sim() {
    let cluster = sim_cluster_for_loss();
    let src = DeviceMesh::from_cluster(&cluster, 0, (2, 4), "src").unwrap();
    let dst = DeviceMesh::from_cluster(&cluster, 2, (2, 4), "dst").unwrap();
    let spec: ShardingSpec = "S0RR".parse().unwrap();
    let task = ReshardingTask::new(src, spec.clone(), dst, spec, &[8, 8, 8], 1).unwrap();
    let plan = EnsemblePlanner::new(config()).plan(&task);
    let err = plan
        .repair(&SenderExclusions::for_hosts([HostId(0)]))
        .unwrap_err();
    assert!(err.to_string().contains("data loss"), "got: {err}");
}

fn sim_cluster_for_loss() -> ClusterSpec {
    ClusterSpec::homogeneous(4, 4, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0))
}
