//! Static-verifier properties over the whole planner engine: every plan
//! any planner produces must verify with zero diagnostics, and mutated
//! plans (dropped flow, duplicated flow, swapped ring edge) must always be
//! convicted under the matching rule id.

use crossmesh::check::verify::{ring_spec, verify_plan, verify_ring, verify_schedule};
use crossmesh::check::{has_errors, Rule};
use crossmesh::core::{
    Assignment, DfsPlanner, EnsemblePlanner, LoadBalancePlanner, NaivePlanner, Planner,
    PlannerConfig, RandomizedGreedyPlanner, ReshardingTask,
};
use crossmesh::mesh::{DeviceMesh, DimSharding, ShardingSpec};
use crossmesh::netsim::{ClusterSpec, LinkParams};
use crossmesh::pipeline::{build_schedule, ScheduleKind, WeightDelay};
use proptest::prelude::*;

/// A random valid sharding spec of the given rank (each mesh axis shards
/// at most one tensor dimension).
fn spec_strategy(rank: usize) -> impl Strategy<Value = ShardingSpec> {
    (
        prop::option::of(0..rank),
        prop::option::of(0..rank),
        any::<bool>(),
    )
        .prop_map(move |(a0, a1, swap)| {
            let mut dims = vec![DimSharding::Replicated; rank];
            match (a0, a1) {
                (Some(d0), Some(d1)) if d0 == d1 => {
                    let axes = if swap { vec![0, 1] } else { vec![1, 0] };
                    dims[d0] = DimSharding::Sharded(axes);
                }
                (a0, a1) => {
                    if let Some(d) = a0 {
                        dims[d] = DimSharding::Sharded(vec![0]);
                    }
                    if let Some(d) = a1 {
                        dims[d] = DimSharding::Sharded(vec![1]);
                    }
                }
            }
            ShardingSpec::new(dims).expect("construction is valid by design")
        })
}

/// Random planning problem on disjoint meshes of a shared cluster.
#[derive(Debug, Clone)]
struct Problem {
    src_shape: (usize, usize),
    dst_shape: (usize, usize),
    src_spec: ShardingSpec,
    dst_spec: ShardingSpec,
    tensor: Vec<u64>,
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (2usize..=3)
        .prop_flat_map(|rank| {
            (
                (1usize..=2, 1usize..=4),
                (1usize..=3, 1usize..=4),
                spec_strategy(rank),
                spec_strategy(rank),
                prop::collection::vec(1u64..=12, rank),
            )
        })
        .prop_map(
            |(src_shape, dst_shape, src_spec, dst_spec, tensor)| Problem {
                src_shape,
                dst_shape,
                src_spec,
                dst_spec,
                tensor,
            },
        )
}

fn build(p: &Problem) -> (ReshardingTask, ClusterSpec) {
    let hosts = (p.src_shape.0 + p.dst_shape.0) as u32;
    let cluster = ClusterSpec::homogeneous(
        hosts,
        4,
        LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0),
    );
    let src = DeviceMesh::from_cluster(&cluster, 0, p.src_shape, "src").unwrap();
    let dst = DeviceMesh::from_cluster(&cluster, p.src_shape.0, p.dst_shape, "dst").unwrap();
    let task = ReshardingTask::new(
        src,
        p.src_spec.clone(),
        dst,
        p.dst_spec.clone(),
        &p.tensor,
        1,
    )
    .unwrap();
    (task, cluster)
}

fn config() -> PlannerConfig {
    PlannerConfig::new(crossmesh::core::CostParams {
        inter_bw: 1.0,
        intra_bw: 100.0,
        inter_latency: 0.0,
        intra_latency: 0.0,
    })
}

/// Every planner in the engine, seeded where applicable.
fn all_planners(seed: u64) -> Vec<(&'static str, Box<dyn Planner>)> {
    vec![
        (
            "naive",
            Box::new(NaivePlanner::new(config())) as Box<dyn Planner>,
        ),
        ("lpt", Box::new(LoadBalancePlanner::new(config()))),
        (
            "dfs",
            Box::new(DfsPlanner::new(config()).with_node_budget(2_000)),
        ),
        (
            "greedy",
            Box::new(
                RandomizedGreedyPlanner::new(config())
                    .with_seed(seed)
                    .with_restarts(3),
            ),
        ),
        (
            "ensemble",
            Box::new(
                EnsemblePlanner::new(config())
                    .with_greedy(RandomizedGreedyPlanner::new(config()).with_seed(seed)),
            ),
        ),
    ]
}

/// Runs the verifier over a raw assignment list (which may be mutated into
/// invalidity, so it cannot go through `Plan::new`).
fn verify_views(
    task: &ReshardingTask,
    assignments: &[Assignment],
) -> Vec<crossmesh::check::Diagnostic> {
    let views: Vec<_> = assignments.iter().map(Assignment::as_view).collect();
    verify_plan(
        task.units(),
        task.shape(),
        task.elem_bytes(),
        &views,
        None,
        &|_, _| false,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The soundness contract: every plan from every planner on every
    /// random task verifies with zero convictions (capacity rules
    /// included, against the very cluster the task was built on). The flat
    /// test cluster leaves its fabric unbounded, so the only acceptable
    /// finding is the `plan.capacity.unbounded` vacuity warning.
    #[test]
    fn every_planner_output_verifies_clean(p in problem_strategy(), seed in any::<u64>()) {
        let (task, cluster) = build(&p);
        for (name, planner) in all_planners(seed) {
            let plan = planner.plan(&task);
            let diags = plan.verify(Some(&cluster), &|_, _| false);
            prop_assert!(
                !has_errors(&diags),
                "{} produced a plan the verifier rejects: {:?}",
                name,
                diags
            );
            prop_assert!(
                diags.iter().all(|d| d.rule == Rule::CapacityUnbounded),
                "{} produced unexpected warnings: {:?}",
                name,
                diags
            );
        }
    }

    /// The completeness contract, coverage rules: dropping any flow from a
    /// valid plan is always convicted as `plan.coverage.missing`, and
    /// duplicating any flow as `plan.coverage.duplicate`.
    #[test]
    fn mutated_plans_always_fail_with_the_matching_rule(
        p in problem_strategy(),
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        let (task, _cluster) = build(&p);
        let planner = EnsemblePlanner::new(config())
            .with_greedy(RandomizedGreedyPlanner::new(config()).with_seed(seed));
        let plan = planner.plan(&task);
        let assignments = plan.assignments().to_vec();
        prop_assume!(!assignments.is_empty());
        let victim = (pick % assignments.len() as u64) as usize;

        // Dropped flow.
        let mut dropped = assignments.clone();
        dropped.remove(victim);
        let diags = verify_views(&task, &dropped);
        prop_assert!(has_errors(&diags));
        prop_assert!(
            diags.iter().any(|d| d.rule == Rule::CoverageMissing),
            "dropped flow not convicted as plan.coverage.missing: {:?}",
            diags
        );

        // Duplicated flow.
        let mut duplicated = assignments.clone();
        duplicated.push(assignments[victim]);
        let diags = verify_views(&task, &duplicated);
        prop_assert!(has_errors(&diags));
        prop_assert!(
            diags.iter().any(|d| d.rule == Rule::CoverageDuplicate),
            "duplicated flow not convicted as plan.coverage.duplicate: {:?}",
            diags
        );
    }

    /// The completeness contract, ring rules: swapping any two hops of a
    /// canonical broadcast ring is always convicted as `plan.ring.order`.
    #[test]
    fn swapped_ring_edges_always_fail(p in problem_strategy(), seed in any::<u64>()) {
        let (task, _cluster) = build(&p);
        let planner = EnsemblePlanner::new(config())
            .with_greedy(RandomizedGreedyPlanner::new(config()).with_seed(seed));
        let plan = planner.plan(&task);
        for a in plan.assignments() {
            let unit = &task.units()[a.unit];
            let Some(ring) = ring_spec(unit, &a.as_view()) else {
                continue;
            };
            if ring.hops.len() < 3 {
                continue;
            }
            // Hop keys are strictly increasing in a canonical ring, so any
            // adjacent swap after the sender must break the order.
            for i in 1..ring.hops.len() - 1 {
                let mut swapped = ring.clone();
                swapped.hops.swap(i, i + 1);
                let diags = verify_ring(unit, a.unit, &swapped, a.sender_host, ring.chunks);
                prop_assert!(
                    diags.iter().any(|d| d.rule == Rule::RingOrder),
                    "swap at {} of unit {} not convicted: {:?}",
                    i,
                    a.unit,
                    diags
                );
            }
        }
    }

    /// Every synchronous pipeline schedule the builder emits passes the
    /// hazard pass, at any stage/microbatch scale.
    #[test]
    fn built_pipeline_schedules_verify_clean(
        stages in 1usize..=6,
        m in 1usize..=12,
        kind_idx in 0usize..4,
    ) {
        let kind = [
            ScheduleKind::GPipe,
            ScheduleKind::OneFOneB,
            ScheduleKind::Eager1F1B,
            ScheduleKind::Inference,
        ][kind_idx];
        let s = build_schedule(kind, stages, m, WeightDelay::None);
        let diags = verify_schedule(&s.check_ops(), m as u32);
        prop_assert!(diags.is_empty(), "{kind} {stages}x{m}: {:?}", diags);
    }
}
