//! Serde round-trip tests for the public data types: configurations and
//! results must survive JSON serialization unchanged (they feed the CLI's
//! `--json` output and the bench harness dumps).

use crossmesh::core::{Assignment, CostParams, ExecutionReport, Strategy};
use crossmesh::mesh::{DeviceMesh, ShardingSpec, Tile, UnitTask};
use crossmesh::models::gpt::GptConfig;
use crossmesh::models::partition::{OpChain, OpNode};
use crossmesh::models::utransformer::UTransformerConfig;
use crossmesh::models::Precision;
use crossmesh::netsim::{ClusterSpec, LinkParams, TaskGraph, Work};
use crossmesh::pipeline::{CommMode, PipelineConfig, ScheduleKind, WeightDelay};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn sharding_specs_roundtrip() {
    for text in ["S0RR", "RS01", "RRR", "S1S0"] {
        let spec: ShardingSpec = text.parse().unwrap();
        assert_eq!(roundtrip(&spec), spec);
    }
}

#[test]
fn tiles_and_unit_tasks_roundtrip() {
    let c = ClusterSpec::homogeneous(4, 2, LinkParams::new(10e9, 1e9));
    let a = DeviceMesh::from_cluster(&c, 0, (2, 2), "A").unwrap();
    let b = DeviceMesh::from_cluster(&c, 2, (2, 2), "B").unwrap();
    let tile = Tile::new([0..4, 2..8]);
    assert_eq!(roundtrip(&tile), tile);
    let tasks = crossmesh::mesh::unit_tasks(
        &a,
        &"S0R".parse().unwrap(),
        &b,
        &"RS1".parse().unwrap(),
        &[8, 8],
        4,
    )
    .unwrap();
    let back: Vec<UnitTask> = roundtrip(&tasks);
    assert_eq!(back, tasks);
}

#[test]
fn cluster_and_graph_roundtrip() {
    let c = ClusterSpec::homogeneous(3, 4, LinkParams::new(100e9, 1.25e9))
        .with_device_flops(50e12)
        .with_fabric_capacity(5e9);
    let back = roundtrip(&c);
    assert_eq!(back, c);
    assert_eq!(back.fabric_capacity(), Some(5e9));

    let mut g = TaskGraph::new();
    let t = g.add(Work::compute(c.device(0, 0), 1.0), []);
    g.add_labeled(
        Work::flow(c.device(0, 0), c.device(1, 0), 64.0),
        [t],
        Some("payload"),
    );
    assert_eq!(roundtrip(&g), g);
}

#[test]
fn planner_outputs_roundtrip() {
    let a = Assignment {
        unit: 3,
        sender: crossmesh::netsim::DeviceId(7),
        sender_host: crossmesh::netsim::HostId(1),
        strategy: Strategy::Broadcast { chunks: 64 },
    };
    assert_eq!(roundtrip(&a), a);
    let r = ExecutionReport {
        simulated_seconds: 1.5,
        cross_host_bytes: 1e9,
        tasks_lowered: 42,
    };
    assert_eq!(roundtrip(&r), r);
    let p = CostParams::default();
    assert_eq!(roundtrip(&p), p);
}

#[test]
fn pipeline_and_model_configs_roundtrip() {
    let pc = PipelineConfig {
        schedule: ScheduleKind::Eager1F1B,
        comm: CommMode::Overlapped,
        weight_delay: WeightDelay::Fixed(2),
    };
    assert_eq!(roundtrip(&pc), pc);
    let gpt = GptConfig::case1();
    assert_eq!(roundtrip(&gpt), gpt);
    let ut = UTransformerConfig::case1();
    assert_eq!(roundtrip(&ut), ut);
    let chain = OpChain {
        ops: vec![OpNode::new("l0", 1e12, 100, vec![4, 4])],
        num_microbatches: 4,
        elem_bytes: 2,
        precision: Precision::Fp16,
    };
    assert_eq!(roundtrip(&chain), chain);
}
