//! Property-based tests over the whole stack: random sharding specs,
//! tensor shapes, and mesh shapes must uphold the core invariants.

use crossmesh::core::{
    EnsemblePlanner, LoadBalancePlanner, NaivePlanner, Planner, PlannerConfig, ReshardingTask,
};
use crossmesh::mesh::{DeviceMesh, DimSharding, Layout, ShardingSpec};
use crossmesh::netsim::{ClusterSpec, LinkParams};
use proptest::prelude::*;

/// A random valid sharding spec of the given rank: each of the two mesh
/// axes is assigned to at most one tensor dimension.
fn spec_strategy(rank: usize) -> impl Strategy<Value = ShardingSpec> {
    // For each axis: Some(dim) it shards, or None. `swap` orders the axes
    // when both land on the same dimension.
    (
        prop::option::of(0..rank),
        prop::option::of(0..rank),
        any::<bool>(),
    )
        .prop_map(move |(a0, a1, swap)| {
            let mut dims = vec![DimSharding::Replicated; rank];
            match (a0, a1) {
                (Some(d0), Some(d1)) if d0 == d1 => {
                    let axes = if swap { vec![0, 1] } else { vec![1, 0] };
                    dims[d0] = DimSharding::Sharded(axes);
                }
                (a0, a1) => {
                    if let Some(d) = a0 {
                        dims[d] = DimSharding::Sharded(vec![0]);
                    }
                    if let Some(d) = a1 {
                        dims[d] = DimSharding::Sharded(vec![1]);
                    }
                }
            }
            ShardingSpec::new(dims).expect("construction is valid by design")
        })
}

/// Random problem: disjoint meshes on a shared cluster, two specs, a shape.
#[derive(Debug, Clone)]
struct Problem {
    src_shape: (usize, usize),
    dst_shape: (usize, usize),
    src_spec: ShardingSpec,
    dst_spec: ShardingSpec,
    tensor: Vec<u64>,
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (1usize..=3)
        .prop_flat_map(|rank| {
            (
                (1usize..=2, 1usize..=4),
                (1usize..=2, 1usize..=4),
                spec_strategy(rank),
                spec_strategy(rank),
                prop::collection::vec(1u64..=12, rank),
            )
        })
        .prop_map(
            |(src_shape, dst_shape, src_spec, dst_spec, tensor)| Problem {
                src_shape,
                dst_shape,
                src_spec,
                dst_spec,
                tensor,
            },
        )
}

fn build(p: &Problem) -> (ClusterSpec, ReshardingTask) {
    let hosts = (p.src_shape.0 + p.dst_shape.0) as u32;
    let cluster = ClusterSpec::homogeneous(
        hosts,
        4,
        LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0),
    );
    let src = DeviceMesh::from_cluster(&cluster, 0, p.src_shape, "src").unwrap();
    let dst = DeviceMesh::from_cluster(&cluster, p.src_shape.0, p.dst_shape, "dst").unwrap();
    let task = ReshardingTask::new(
        src,
        p.src_spec.clone(),
        dst,
        p.dst_spec.clone(),
        &p.tensor,
        1,
    )
    .unwrap();
    (cluster, task)
}

fn config() -> PlannerConfig {
    PlannerConfig::new(crossmesh::core::CostParams {
        inter_bw: 1.0,
        intra_bw: 100.0,
        inter_latency: 0.0,
        intra_latency: 0.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Specs round-trip through their string form.
    #[test]
    fn spec_string_roundtrip(spec in spec_strategy(3)) {
        let text = spec.to_string();
        let back: ShardingSpec = text.parse().unwrap();
        prop_assert_eq!(back, spec);
    }

    /// The unique slices of any layout tile the tensor exactly.
    #[test]
    fn unique_slices_partition_the_tensor(p in problem_strategy()) {
        let (cluster, _) = build(&p);
        let mesh = DeviceMesh::from_cluster(&cluster, 0, p.src_shape, "m").unwrap();
        let layout = Layout::new(&mesh, &p.src_spec, &p.tensor).unwrap();
        let total: u64 = layout.unique_slices().iter().map(|(t, _)| t.volume()).sum();
        prop_assert_eq!(total, p.tensor.iter().product::<u64>());
        // Slices are pairwise disjoint.
        let slices = layout.unique_slices();
        for i in 0..slices.len() {
            for j in i + 1..slices.len() {
                prop_assert!(slices[i].0.intersect(&slices[j].0).is_none());
            }
        }
    }

    /// Unit tasks conserve bytes and cover every destination tile exactly.
    #[test]
    fn unit_tasks_cover_destinations(p in problem_strategy()) {
        let (cluster, task) = build(&p);
        let tensor_bytes: u64 = p.tensor.iter().product();
        let total: u64 = task.units().iter().map(|u| u.bytes).sum();
        prop_assert_eq!(total, tensor_bytes);

        let dst = DeviceMesh::from_cluster(&cluster, p.src_shape.0, p.dst_shape, "dst").unwrap();
        let layout = Layout::new(&dst, &p.dst_spec, &p.tensor).unwrap();
        for coord in dst.coords() {
            let dev = dst.device(coord);
            let tile = layout.tile_at(coord);
            if tile.is_empty() {
                continue;
            }
            let got: u64 = task
                .units()
                .iter()
                .flat_map(|u| &u.receivers)
                .filter(|r| r.device == dev)
                .map(|r| r.needed.volume())
                .sum();
            prop_assert_eq!(got, tile.volume(), "device {} under-covered", dev);
        }
    }

    /// Every planner yields a valid plan whose simulation respects the
    /// bandwidth lower bound and beats nothing it cannot beat.
    #[test]
    fn plans_are_valid_and_bounded(p in problem_strategy()) {
        let (cluster, task) = build(&p);
        for planner in [
            Box::new(NaivePlanner::new(config())) as Box<dyn Planner>,
            Box::new(LoadBalancePlanner::new(config())),
            Box::new(EnsemblePlanner::new(config())),
        ] {
            let plan = planner.plan(&task);
            prop_assert_eq!(plan.assignments().len(), task.units().len());
            let report = plan.execute(&cluster).unwrap();
            prop_assert!(report.simulated_seconds + 1e-9 >= plan.lower_bound());
            // Serial upper bound: everything through one NIC.
            let serial = task.total_bytes() as f64 * 3.0 + 1.0;
            prop_assert!(report.simulated_seconds <= serial);
        }
    }

    /// The ensemble's estimate never exceeds the naive baseline's.
    #[test]
    fn ensemble_estimate_dominates_naive(p in problem_strategy()) {
        let (_, task) = build(&p);
        let ours = EnsemblePlanner::new(config()).plan(&task).estimate();
        let naive = NaivePlanner::new(config()).plan(&task).estimate();
        prop_assert!(ours <= naive + 1e-9, "ours {} vs naive {}", ours, naive);
    }

    /// The data plane verifies that every plan moves exactly the right
    /// elements: full destination coverage, correct values, no conflicts.
    #[test]
    fn plans_move_the_right_data(p in problem_strategy()) {
        let (_, task) = build(&p);
        for planner in [
            Box::new(NaivePlanner::new(config())) as Box<dyn Planner>,
            Box::new(EnsemblePlanner::new(config())),
        ] {
            let plan = planner.plan(&task);
            let report = crossmesh::core::dataplane::execute_and_verify(&plan)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", planner.name())))?;
            prop_assert!(report.delivered_bytes >= task.total_bytes());
        }
    }
}
