//! End-to-end tests of the resharding daemon: multi-tenant service,
//! load shedding, the shared cross-tenant cache, and — the part that is
//! easy to get wrong — graceful shutdown: in-flight requests drain, new
//! ones are rejected with `shutting_down`, and observability files are
//! flushed. Exercised at worker-pool widths 1 and 4 under a fixed seed.

use crossmesh::serve::proto::{self, Request, RequestBody};
use crossmesh::serve::{
    AdmissionConfig, BackendKind, Client, ReshardRequest, Response, ServeConfig, Server,
};
use std::net::TcpStream;
use std::time::Duration;

fn config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        admission: AdmissionConfig {
            rate: 500.0,
            burst: 100.0,
            queue_depth: 256,
        },
        backend: BackendKind::Sim,
        default_planner: "ours".into(),
        allow_remote_shutdown: false,
        metrics_out: None,
        trace_out: None,
        flightrec_dir: None,
        slo_exec_p99_ms: None,
    }
}

fn small_request() -> ReshardRequest {
    ReshardRequest {
        src_spec: "RS0R".into(),
        dst_spec: "S0RR".into(),
        src_mesh: "2x4".into(),
        dst_mesh: "2x4".into(),
        shape: "64x64x8".into(),
        elem_bytes: 4,
        planner: "ours".into(),
        seed: Some(7),
        faults: None,
    }
}

#[test]
fn multi_tenant_requests_complete_and_share_the_cache() {
    for workers in [1usize, 4] {
        let server = Server::start(config(workers)).expect("daemon starts");
        let addr = server.addr();
        // Three tenants, identical shapes: the first request plans, the
        // rest must hit the shared cache regardless of tenant.
        let mut done = 0u64;
        let mut hits = 0u64;
        for tenant in ["alpha", "beta", "gamma"] {
            let mut client = Client::connect(addr).expect("connects");
            for _ in 0..3 {
                match client.reshard(tenant, small_request()).expect("answered") {
                    Response::Done(d) => {
                        done += 1;
                        if d.cache_hit {
                            hits += 1;
                        }
                        assert!(d.simulated_seconds > 0.0);
                        assert!(d.unit_tasks > 0);
                    }
                    other => panic!("workers={workers}: unexpected reply {other:?}"),
                }
            }
        }
        assert_eq!(done, 9, "workers={workers}");
        assert_eq!(hits, 8, "all but the first request hit the shared cache");

        let summary = server.shutdown();
        assert_eq!(summary.completed, 9);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.verifier_convictions, 0, "workers={workers}");
        assert_eq!(summary.cache_misses, 1, "one cold plan total");
    }
}

#[test]
fn overload_is_shed_with_retry_hints_not_queued_unboundedly() {
    let mut cfg = config(2);
    // Tiny bucket: a burst of 30 admits ~8 and sheds the rest.
    cfg.admission = AdmissionConfig {
        rate: 10.0,
        burst: 8.0,
        queue_depth: 16,
    };
    let server = Server::start(cfg).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connects");

    // Pipeline the burst: send all 30 before reading any reply.
    for i in 0..30u64 {
        client
            .send(&Request {
                id: i + 1,
                tenant: "burst".into(),
                body: RequestBody::Reshard(small_request()),
            })
            .expect("sends");
    }
    let mut done = 0;
    let mut rejected = 0;
    let mut max_retry = 0u64;
    for _ in 0..30 {
        match client.recv().expect("reply").expect("not eof") {
            Response::Done(_) => done += 1,
            Response::Rejected(r) => {
                rejected += 1;
                assert_eq!(r.reason, "rate_limited");
                assert!(r.retry_after_ms > 0, "a hint, not a guess");
                max_retry = max_retry.max(r.retry_after_ms);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(done >= 8, "the burst allowance is admitted (got {done})");
    assert!(rejected >= 20, "the overflow is shed (got {rejected})");
    assert!(max_retry <= 10_000, "hints stay sane: {max_retry}ms");

    let summary = server.shutdown();
    assert_eq!(summary.completed, done);
    assert_eq!(summary.rejected, rejected);
    assert_eq!(summary.verifier_convictions, 0);
}

#[test]
fn graceful_shutdown_drains_in_flight_rejects_new_and_flushes_files() {
    for workers in [1usize, 4] {
        let dir = std::env::temp_dir();
        let metrics_path = dir.join(format!("crossmesh_serve_metrics_{workers}.txt"));
        let trace_path = dir.join(format!("crossmesh_serve_trace_{workers}.json"));
        let _ = std::fs::remove_file(&metrics_path);
        let _ = std::fs::remove_file(&trace_path);

        let mut cfg = config(workers);
        cfg.metrics_out = Some(metrics_path.to_string_lossy().into_owned());
        cfg.trace_out = Some(trace_path.to_string_lossy().into_owned());
        let server = Server::start(cfg).expect("daemon starts");
        let addr = server.addr();

        // Pipeline a pile of requests and wait (via Stats on a second
        // connection) until every one of them has passed admission, so
        // shutdown provably races only against *queued* work.
        let in_flight = 20u64;
        let mut client = Client::connect(addr).expect("connects");
        for i in 0..in_flight {
            client
                .send(&Request {
                    id: i + 1,
                    tenant: "drain".into(),
                    body: RequestBody::Reshard(small_request()),
                })
                .expect("sends");
        }
        let mut probe = Client::connect(addr).expect("connects");
        while probe.stats().expect("stats").accepted < in_flight {
            std::thread::sleep(Duration::from_millis(2));
        }

        // Shut down on another thread while replies are still pending.
        let shutdown = std::thread::spawn(move || server.shutdown());

        // During the drain the daemon must keep answering: admitted work
        // completes, new work is explicitly shed as `shutting_down`.
        let mut probe_done = 0u64;
        let mut probe_shed = 0u64;
        loop {
            match probe.reshard("late", small_request()) {
                Ok(Response::Done(_)) => probe_done += 1,
                Ok(Response::Rejected(r)) => {
                    assert_eq!(r.reason, "shutting_down");
                    probe_shed += 1;
                    break;
                }
                Ok(other) => panic!("workers={workers}: unexpected reply {other:?}"),
                Err(e) => panic!("workers={workers}: daemon closed before shedding: {e}"),
            }
        }
        assert!(probe_shed > 0, "new work is rejected during the drain");

        // Every admitted request still gets its `Done` — drained, not
        // dropped.
        let mut done = 0u64;
        for _ in 0..in_flight {
            match client.recv().expect("reply").expect("not eof") {
                Response::Done(_) => done += 1,
                other => panic!("workers={workers}: unexpected reply {other:?}"),
            }
        }
        assert_eq!(done, in_flight, "nothing vanished");

        let summary = shutdown.join().expect("shutdown completes");
        assert_eq!(summary.completed, done + probe_done, "workers={workers}");
        assert_eq!(summary.rejected, probe_shed);
        assert_eq!(summary.verifier_convictions, 0);

        // New connections after shutdown must fail: the listener is gone.
        assert!(
            TcpStream::connect(addr).is_err()
                || proto::write_frame(
                    &mut TcpStream::connect(addr).expect("raced listener close"),
                    &Request {
                        id: 1,
                        tenant: "late".into(),
                        body: RequestBody::Ping,
                    },
                )
                .is_err()
                || {
                    // The kernel may accept into a dead backlog; the
                    // daemon must never answer.
                    let mut s = TcpStream::connect(addr).expect("raced listener close");
                    s.set_read_timeout(Some(Duration::from_millis(200))).ok();
                    proto::write_frame(
                        &mut s,
                        &Request {
                            id: 1,
                            tenant: "late".into(),
                            body: RequestBody::Ping,
                        },
                    )
                    .ok();
                    matches!(
                        proto::read_frame_timeout::<_, Response>(&mut s),
                        Ok(proto::FrameRead::TimedOut) | Ok(proto::FrameRead::Eof) | Err(_)
                    )
                },
            "a post-shutdown request must not be served"
        );

        // Observability files flushed on the way out.
        let metrics = std::fs::read_to_string(&metrics_path).expect("metrics flushed");
        assert!(
            metrics.contains("serve.tenant.drain.completed"),
            "workers={workers}: per-tenant counters present:\n{metrics}"
        );
        assert!(metrics.contains("plan_cache."), "cache counters present");
        assert!(
            metrics.contains("netsim.events_processed"),
            "workers={workers}: the netsim counters are synced before the flush:\n{metrics}"
        );
        let trace = std::fs::read_to_string(&trace_path).expect("trace flushed");
        let summary = crossmesh::obs::export::validate(&trace).expect("trace validates");
        assert!(
            summary
                .counter_tracks
                .iter()
                .any(|t| t.contains("queue_depth")),
            "queue-depth track exported"
        );
        let _ = std::fs::remove_file(&metrics_path);
        let _ = std::fs::remove_file(&trace_path);
    }
}

#[test]
fn remote_shutdown_is_gated_on_operator_opt_in() {
    // Denied by default.
    let server = Server::start(config(1)).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connects");
    let err = client.shutdown().expect_err("refused");
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
    // The daemon is still alive and serving.
    client.ping().expect("still serving");
    server.shutdown();

    // Allowed when opted in: the flag flips and run_until_shutdown drains.
    let mut cfg = config(1);
    cfg.allow_remote_shutdown = true;
    let server = Server::start(cfg).expect("daemon starts");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connects");
    match client.reshard("ops", small_request()).expect("answered") {
        Response::Done(_) => {}
        other => panic!("unexpected reply {other:?}"),
    }
    client.shutdown().expect("acknowledged");
    let summary = server.run_until_shutdown();
    assert_eq!(summary.completed, 1);
    assert_eq!(summary.verifier_convictions, 0);
}

#[test]
fn telemetry_exposes_prometheus_metrics_and_rolling_quantiles() {
    let server = Server::start(config(2)).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connects");
    for _ in 0..3 {
        assert!(matches!(
            client.reshard("acme", small_request()).expect("answered"),
            Response::Done(_)
        ));
    }
    let text = client.telemetry().expect("telemetry");
    // Counters and gauges in exposition format, names sanitised.
    assert!(
        text.contains("# TYPE serve_requests counter"),
        "typed counter lines:\n{text}"
    );
    assert!(text.contains("# TYPE serve_queue_depth gauge"));
    // Latency histograms with cumulative buckets.
    assert!(text.contains("serve_exec_ms_bucket{le=\"+Inf\"}"));
    // Rolling-window quantile summaries over the last minute.
    for q in ["0.5", "0.99", "0.999"] {
        assert!(
            text.contains(&format!("serve_exec_ms_window{{quantile=\"{q}\"}}")),
            "missing p{q} summary:\n{text}"
        );
    }
    assert!(text.contains("serve_queue_ms_window_count"));
    // The netsim engine counters are synced into every scrape (the sim
    // backend just executed three plans).
    assert!(
        text.contains("netsim_events_processed"),
        "netsim counters synced before render:\n{text}"
    );
    // The plan cache's registry rides along.
    assert!(text.contains("plan_cache_"), "cache metrics present");
    // SLO rules were evaluated as part of the scrape.
    assert!(text.contains("obs_slo_evaluations"));
    server.shutdown();
}

#[test]
fn seeded_faults_repair_and_dump_a_validating_flight_record() {
    let dir =
        std::env::temp_dir().join(format!("crossmesh_serve_flightrec_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = config(2);
    cfg.flightrec_dir = Some(dir.to_string_lossy().into_owned());
    let server = Server::start(cfg).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connects");

    // Crash a source host at t=0: the run fails, the daemon repairs the
    // plan around the crash, re-executes, and still answers `Done`.
    // RS1R replicates every slice across both sender hosts, so the crash
    // of host 0 is recoverable by failover.
    let schedule = crossmesh::faults::FaultSchedule::new(0)
        .with_event(crossmesh::faults::FaultEvent::HostCrash { host: 0, at: 0.0 });
    let mut req = small_request();
    req.src_spec = "RS1R".into();
    req.faults = Some(schedule.to_json());
    match client.reshard("faulty", req).expect("answered") {
        Response::Done(d) => assert!(d.simulated_seconds > 0.0),
        other => panic!("unexpected reply {other:?}"),
    }
    // The repair bumped the counter and dumped the flight recorder.
    let snap = server.registry().snapshot();
    assert!(snap.counter("serve.fault_repairs") >= 1, "repair counted");
    server.shutdown();

    let dump = std::fs::read_dir(&dir)
        .expect("dump dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flightrec-fault-repair-"))
        })
        .expect("a fault-repair flight record was dumped");
    let json = std::fs::read_to_string(&dump).expect("dump readable");
    crossmesh::obs::export::validate(&json).expect("dump passes validate-trace");
    assert!(json.contains("dump: fault-repair"), "trigger marked");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slo_breach_and_shed_spike_trigger_flight_recorder_dumps() {
    // SLO: an absurdly tight exec-p99 bound that any real execution
    // breaches once the window holds enough samples.
    let dir = std::env::temp_dir().join(format!("crossmesh_serve_slo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = config(2);
    cfg.flightrec_dir = Some(dir.to_string_lossy().into_owned());
    cfg.slo_exec_p99_ms = Some(1e-9);
    let server = Server::start(cfg).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connects");
    for _ in 0..12 {
        assert!(matches!(
            client.reshard("hot", small_request()).expect("answered"),
            Response::Done(_)
        ));
    }
    let snap = server.registry().snapshot();
    assert!(
        snap.counter("obs.slo.breach.exec_p99_ms") >= 1,
        "the impossible p99 bound must be breached"
    );
    server.shutdown();
    let breach_dump = std::fs::read_dir(&dir)
        .expect("dump dir exists")
        .filter_map(|e| e.ok())
        .any(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("flightrec-slo-breach-"))
        });
    assert!(breach_dump, "SLO breach dumped the flight recorder");
    let _ = std::fs::remove_dir_all(&dir);

    // Shed spike: a starved token bucket rejects a pipelined burst; 16
    // consecutive rejections fire one spike dump.
    let dir = std::env::temp_dir().join(format!("crossmesh_serve_shed_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = config(1);
    cfg.flightrec_dir = Some(dir.to_string_lossy().into_owned());
    cfg.admission = AdmissionConfig {
        rate: 0.001,
        burst: 1.0,
        queue_depth: 4,
    };
    let server = Server::start(cfg).expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connects");
    for i in 0..40u64 {
        client
            .send(&Request {
                id: i + 1,
                tenant: "burst".into(),
                body: RequestBody::Reshard(small_request()),
            })
            .expect("sends");
    }
    let mut rejected = 0;
    for _ in 0..40 {
        if let Response::Rejected(_) = client.recv().expect("reply").expect("not eof") {
            rejected += 1;
        }
    }
    assert!(rejected >= 30, "the burst is shed (got {rejected})");
    server.shutdown();
    let spike_dump = std::fs::read_dir(&dir)
        .expect("dump dir exists")
        .filter_map(|e| e.ok())
        .any(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("flightrec-shed-spike-"))
        });
    assert!(spike_dump, "the shed spike dumped the flight recorder");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_reports_per_tenant_breakdown() {
    let server = Server::start(config(2)).expect("daemon starts");
    let mut a = Client::connect(server.addr()).expect("connects");
    let mut b = Client::connect(server.addr()).expect("connects");
    for _ in 0..2 {
        assert!(matches!(
            a.reshard("acme", small_request()).expect("answered"),
            Response::Done(_)
        ));
    }
    assert!(matches!(
        b.reshard("zeta", small_request()).expect("answered"),
        Response::Done(_)
    ));
    let stats = a.stats().expect("stats");
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.tenants.len(), 2);
    assert_eq!(stats.tenants["acme"].completed, 2);
    assert_eq!(stats.tenants["zeta"].completed, 1);
    assert!(stats.cache_hits >= 2, "cross-tenant sharing visible");
    assert_eq!(stats.verifier_convictions, 0);
    server.shutdown();
}
