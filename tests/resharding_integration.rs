//! Cross-crate integration tests: sharding specs → unit tasks → planner →
//! flow-level simulation, checked against the paper's analytic claims.

use crossmesh::core::{
    DfsPlanner, EnsemblePlanner, LoadBalancePlanner, NaivePlanner, Planner, PlannerConfig,
    RandomizedGreedyPlanner, ReshardingTask, Strategy, StrategyChoice,
};
use crossmesh::mesh::DeviceMesh;
use crossmesh::netsim::{ClusterSpec, LinkParams};

/// Byte-scale bandwidths (NVLink 100 B/s, NIC 1 B/s) with zero latency so
/// results are exact multiples of `t`.
fn cluster(hosts: u32) -> ClusterSpec {
    ClusterSpec::homogeneous(
        hosts,
        4,
        LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0),
    )
}

fn config() -> PlannerConfig {
    PlannerConfig::new(crossmesh::core::CostParams {
        inter_bw: 1.0,
        intra_bw: 100.0,
        inter_latency: 0.0,
        intra_latency: 0.0,
    })
}

fn task(c: &ClusterSpec, src: &str, dst: &str, shape: &[u64]) -> ReshardingTask {
    let a = DeviceMesh::from_cluster(c, 0, (2, 4), "A").unwrap();
    let b = DeviceMesh::from_cluster(c, 2, (2, 4), "B").unwrap();
    ReshardingTask::new(a, src.parse().unwrap(), b, dst.parse().unwrap(), shape, 1).unwrap()
}

/// Spec pairs covering every sharding family: replication, single-axis,
/// multi-axis, transposition, and mixtures.
const SPEC_PAIRS: &[(&str, &str)] = &[
    ("RRR", "RRR"),
    ("RRR", "S0RR"),
    ("S0RR", "RRR"),
    ("S0RR", "S0RR"),
    ("S0RR", "S1RR"),
    ("S1RR", "S0RR"),
    ("RS0R", "S0RR"),
    ("RS01R", "S01RR"),
    ("S01RR", "S01RR"),
    ("S0S1R", "S1S0R"),
    ("RS0R", "RRS0"),
    ("RRS1", "S0RR"),
];

#[test]
fn every_plan_beats_its_bandwidth_lower_bound() {
    let c = cluster(4);
    for &(src, dst) in SPEC_PAIRS {
        let t = task(&c, src, dst, &[32, 16, 8]);
        let plan = EnsemblePlanner::new(config()).plan(&t);
        let sim = plan.execute(&c).unwrap().simulated_seconds;
        assert!(
            sim + 1e-9 >= plan.lower_bound(),
            "{src}->{dst}: simulated {sim} below bound {}",
            plan.lower_bound()
        );
    }
}

#[test]
fn estimates_track_simulation() {
    // The analytic list-schedule estimate should stay within 35% of the
    // simulated time for all spec pairs (it ignores flow interleaving).
    let c = cluster(4);
    for &(src, dst) in SPEC_PAIRS {
        let t = task(&c, src, dst, &[32, 16, 8]);
        let plan = EnsemblePlanner::new(config()).plan(&t);
        let sim = plan.execute(&c).unwrap().simulated_seconds;
        let est = plan.estimate();
        let rel = (est - sim).abs() / sim.max(1e-12);
        assert!(
            rel < 0.35,
            "{src}->{dst}: estimate {est} vs simulated {sim}"
        );
    }
}

#[test]
fn broadcast_never_loses_to_the_other_strategies() {
    // §3.1's claim: broadcast is optimal among the four strategies, for
    // every layout pair (same planner, same schedule).
    let c = cluster(4);
    for &(src, dst) in SPEC_PAIRS {
        let t = task(&c, src, dst, &[32, 16, 8]);
        let run = |strategy: Strategy| {
            LoadBalancePlanner::new(config().with_strategy(StrategyChoice::Fixed(strategy)))
                .plan(&t)
                .execute(&c)
                .unwrap()
                .simulated_seconds
        };
        let bc = run(Strategy::broadcast());
        for s in [
            Strategy::SendRecv,
            Strategy::LocalAllGather,
            Strategy::GlobalAllGather,
        ] {
            let other = run(s);
            assert!(
                bc <= other * 1.07,
                "{src}->{dst}: broadcast {bc} vs {s} {other}"
            );
        }
    }
}

#[test]
fn ensemble_never_loses_to_simpler_planners() {
    let c = cluster(4);
    for &(src, dst) in SPEC_PAIRS {
        let t = task(&c, src, dst, &[32, 16, 8]);
        let ours = EnsemblePlanner::new(config())
            .plan(&t)
            .execute(&c)
            .unwrap()
            .simulated_seconds;
        for planner in [
            Box::new(NaivePlanner::new(config())) as Box<dyn Planner>,
            Box::new(LoadBalancePlanner::new(config())),
            Box::new(DfsPlanner::new(config())),
            Box::new(RandomizedGreedyPlanner::new(config())),
        ] {
            let other = planner.plan(&t).execute(&c).unwrap().simulated_seconds;
            assert!(
                ours <= other * 1.05,
                "{src}->{dst}: ours {ours} vs {} {other}",
                planner.name()
            );
        }
    }
}

#[test]
fn cross_host_traffic_meets_the_section22_lower_bound() {
    // §2.2: the message volume between two meshes on disjoint hosts is
    // lower-bounded by the tensor size; broadcast should be close to it.
    let c = cluster(4);
    for &(src, dst) in SPEC_PAIRS {
        let t = task(&c, src, dst, &[32, 16, 8]);
        let report = EnsemblePlanner::new(config()).plan(&t).execute(&c).unwrap();
        let tensor_bytes = (32 * 16 * 8) as f64;
        assert!(
            report.cross_host_bytes + 1e-9 >= tensor_bytes,
            "{src}->{dst}: moved {} < tensor {}",
            report.cross_host_bytes,
            tensor_bytes
        );
        // Broadcast sends each slice once per receiver host (2 dst hosts
        // at worst): never more than 2x the lower bound here.
        assert!(
            report.cross_host_bytes <= 2.0 * tensor_bytes + 1e-9,
            "{src}->{dst}: moved {}",
            report.cross_host_bytes
        );
    }
}

#[test]
fn plans_are_deterministic() {
    let c = cluster(4);
    let t = task(&c, "RS01R", "S01RR", &[32, 16, 8]);
    let p1 = EnsemblePlanner::new(config()).plan(&t);
    let p2 = EnsemblePlanner::new(config()).plan(&t);
    assert_eq!(p1.assignments(), p2.assignments());
    let r1 = p1.execute(&c).unwrap();
    let r2 = p2.execute(&c).unwrap();
    assert_eq!(r1, r2);
}

#[test]
fn meshes_sharing_hosts_but_not_devices_work() {
    // Source and destination meshes on the SAME hosts (different devices):
    // resharding should use only fast intra-host links.
    let c = cluster(2);
    let src = DeviceMesh::new(
        "src",
        (2, 2),
        vec![
            c.device(0, 0),
            c.device(0, 1),
            c.device(1, 0),
            c.device(1, 1),
        ],
        vec![
            c.host_of(c.device(0, 0)),
            c.host_of(c.device(0, 1)),
            c.host_of(c.device(1, 0)),
            c.host_of(c.device(1, 1)),
        ],
    )
    .unwrap();
    let dst = DeviceMesh::new(
        "dst",
        (2, 2),
        vec![
            c.device(0, 2),
            c.device(0, 3),
            c.device(1, 2),
            c.device(1, 3),
        ],
        vec![
            c.host_of(c.device(0, 2)),
            c.host_of(c.device(0, 3)),
            c.host_of(c.device(1, 2)),
            c.host_of(c.device(1, 3)),
        ],
    )
    .unwrap();
    let t = ReshardingTask::new(
        src,
        "S0R".parse().unwrap(),
        dst,
        "S0R".parse().unwrap(),
        &[64, 64],
        1,
    )
    .unwrap();
    let report = EnsemblePlanner::new(config()).plan(&t).execute(&c).unwrap();
    assert_eq!(report.cross_host_bytes, 0.0, "no NIC traffic expected");
    // 2048 bytes per host-local slice at 100 B/s NVLink: tens of seconds,
    // far less than the 4096 s the NIC would need.
    assert!(report.simulated_seconds < 100.0);
}
