//! Cross-crate integration tests for the pipeline layer: schedules,
//! overlap modes, and the end-to-end model builders.

use crossmesh::core::{EnsemblePlanner, PlannerConfig};
use crossmesh::mesh::DeviceMesh;
use crossmesh::models::gpt::GptConfig;
use crossmesh::models::utransformer::UTransformerConfig;
use crossmesh::models::{presets, Precision};
use crossmesh::netsim::{ClusterSpec, LinkParams};
use crossmesh::pipeline::{
    simulate, CommMode, EdgeTensor, PipelineConfig, ScheduleKind, Stage, StageGraph, WeightDelay,
};

fn planner() -> EnsemblePlanner {
    EnsemblePlanner::new(PlannerConfig::new(crossmesh::core::CostParams {
        inter_bw: 1.0,
        intra_bw: 100.0,
        inter_latency: 0.0,
        intra_latency: 0.0,
    }))
}

/// An `n`-stage linear pipeline over `n` hosts with uniform compute and
/// boundary tensors of `bytes`.
fn linear_pipeline(
    cluster: &ClusterSpec,
    stages: usize,
    microbatches: usize,
    compute: f64,
    bytes: u64,
) -> StageGraph {
    let mut g = StageGraph::new(microbatches);
    let ids: Vec<usize> = (0..stages)
        .map(|i| {
            let mesh = DeviceMesh::from_cluster(cluster, i, (1, 2), format!("s{i}")).unwrap();
            g.add_stage(Stage::new(format!("s{i}"), mesh, compute))
        })
        .collect();
    for w in ids.windows(2) {
        g.connect(
            w[0],
            w[1],
            EdgeTensor {
                shape: vec![bytes],
                elem_bytes: 1,
                src_spec: "S1".parse().unwrap(),
                dst_spec: "S1".parse().unwrap(),
            },
        )
        .unwrap();
    }
    g
}

fn run(g: &StageGraph, c: &ClusterSpec, schedule: ScheduleKind, comm: CommMode) -> f64 {
    simulate(
        g,
        c,
        &planner(),
        &PipelineConfig {
            schedule,
            comm,
            weight_delay: WeightDelay::None,
        },
    )
    .unwrap()
    .iteration_seconds
}

#[test]
fn ordering_holds_across_depths_and_microbatch_counts() {
    for stages in [2usize, 3, 4] {
        let c = ClusterSpec::homogeneous(
            stages as u32,
            2,
            LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0),
        );
        for m in [2usize, 4, 8] {
            let g = linear_pipeline(&c, stages, m, 1.0, 2);
            let signal = run(&g, &c, ScheduleKind::OneFOneB, CommMode::Signal);
            let eager = run(&g, &c, ScheduleKind::Eager1F1B, CommMode::Overlapped);
            let overlap = run(&g, &c, ScheduleKind::OneFOneB, CommMode::Overlapped);
            let sync = run(&g, &c, ScheduleKind::OneFOneB, CommMode::Synchronous);
            assert!(
                signal <= eager + 1e-9 && eager <= overlap + 1e-9 && overlap <= sync + 1e-9,
                "stages={stages} m={m}: {signal} {eager} {overlap} {sync}"
            );
        }
    }
}

#[test]
fn gpipe_matches_1f1b_time_at_zero_comm() {
    // Same compute, same bubble structure: GPipe and 1F1B have equal
    // iteration time when communication is free (they differ in memory).
    let c = ClusterSpec::homogeneous(3, 2, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0));
    let g = linear_pipeline(&c, 3, 6, 1.0, 1);
    let gpipe = run(&g, &c, ScheduleKind::GPipe, CommMode::Signal);
    let one = run(&g, &c, ScheduleKind::OneFOneB, CommMode::Signal);
    assert!((gpipe - one).abs() < 1e-6, "gpipe {gpipe} vs 1f1b {one}");
}

#[test]
fn pipeline_bubble_shrinks_with_more_microbatches() {
    // Efficiency = ideal/actual rises toward 1 as microbatches grow.
    let c = ClusterSpec::homogeneous(3, 2, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0));
    let eff = |m: usize| {
        let g = linear_pipeline(&c, 3, m, 1.0, 1);
        let t = run(&g, &c, ScheduleKind::OneFOneB, CommMode::Signal);
        3.0 * m as f64 / t
    };
    let (e2, e8, e32) = (eff(2), eff(8), eff(32));
    assert!(e2 < e8 && e8 < e32, "{e2} {e8} {e32}");
    assert!(
        e32 > 0.85,
        "32 microbatches should be >85% efficient: {e32}"
    );
}

#[test]
fn eager_memory_overhead_is_bounded_by_stage_count() {
    // §4's claim: eager-1F1B adds at most #stages extra in-flight
    // activations per stage relative to 1F1B.
    let c = ClusterSpec::homogeneous(4, 2, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0));
    let g = linear_pipeline(&c, 4, 16, 1.0, 1);
    let report = |kind| {
        simulate(
            &g,
            &c,
            &planner(),
            &PipelineConfig {
                schedule: kind,
                comm: CommMode::Signal,
                weight_delay: WeightDelay::None,
            },
        )
        .unwrap()
    };
    let base = report(ScheduleKind::OneFOneB);
    let eager = report(ScheduleKind::Eager1F1B);
    for (b, e) in base
        .peak_live_activations
        .iter()
        .zip(&eager.peak_live_activations)
    {
        assert!(e >= b);
        assert!(e - b <= 4, "eager stores {e} vs 1f1b {b}");
    }
}

#[test]
fn full_models_build_and_simulate_on_the_paper_cluster() {
    let fp16 = presets::aws_p3_8xlarge(2, Precision::Fp16);
    let gpt = GptConfig {
        num_microbatches: 8,
        global_batch: 256,
        num_layers: 8,
        ..GptConfig::case1()
    };
    let job = gpt.build(&fp16).unwrap();
    let planner = EnsemblePlanner::new(PlannerConfig::new(presets::p3_cost_params()));
    let r = simulate(&job.graph, &fp16, &planner, &PipelineConfig::ours()).unwrap();
    assert!(r.iteration_seconds > 0.0);
    assert!(job.aggregate_tflops(r.iteration_seconds) > 0.0);

    let fp32 = presets::aws_p3_8xlarge(2, Precision::Fp32);
    let utrans = UTransformerConfig {
        num_microbatches: 4,
        global_batch: 256,
        ..UTransformerConfig::case1()
    };
    let job = utrans.build(&fp32).unwrap();
    let r = simulate(&job.graph, &fp32, &planner, &PipelineConfig::ours()).unwrap();
    assert!(r.cross_host_bytes > 0.0, "skip connections cross the NIC");
}

#[test]
fn inference_pipeline_latency_is_m_plus_s_minus_1() {
    // Forward-only pipelined inference with free communication: the last
    // of M microbatches leaves stage S-1 after (M + S - 1) forward slots.
    let c = ClusterSpec::homogeneous(3, 2, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0));
    let g = linear_pipeline(&c, 3, 8, 1.0, 1);
    let t = run(&g, &c, ScheduleKind::Inference, CommMode::Signal);
    assert!((t - 10.0).abs() < 1e-6, "expected 10 slots, got {t}");
}

#[test]
fn report_exposes_overlap_accounting() {
    let c = ClusterSpec::homogeneous(2, 2, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0));
    let g = linear_pipeline(&c, 2, 6, 1.0, 2);
    let report = |comm| {
        simulate(
            &g,
            &c,
            &planner(),
            &PipelineConfig {
                schedule: ScheduleKind::Eager1F1B,
                comm,
                weight_delay: WeightDelay::None,
            },
        )
        .unwrap()
    };
    let overlapped = report(CommMode::Overlapped);
    let sync = report(CommMode::Synchronous);
    // Both move the same bytes for the same comm-busy duration, but the
    // overlapped schedule keeps devices busier.
    assert!(overlapped.comm_busy_seconds > 0.0);
    assert!((overlapped.cross_host_bytes - sync.cross_host_bytes).abs() < 1e-6);
    assert!(
        overlapped.mean_device_utilization >= sync.mean_device_utilization - 1e-9,
        "overlap {} vs sync {}",
        overlapped.mean_device_utilization,
        sync.mean_device_utilization
    );
}

#[test]
fn weight_delay_variants_complete_with_identical_op_counts() {
    let c = ClusterSpec::homogeneous(2, 2, LinkParams::new(100.0, 1.0).with_latencies(0.0, 0.0));
    let g = linear_pipeline(&c, 2, 6, 1.0, 2);
    let mut counts = Vec::new();
    for d in [
        WeightDelay::None,
        WeightDelay::Fixed(1),
        WeightDelay::Fixed(2),
    ] {
        let r = simulate(
            &g,
            &c,
            &planner(),
            &PipelineConfig {
                schedule: ScheduleKind::Eager1F1B,
                comm: CommMode::Overlapped,
                weight_delay: d,
            },
        )
        .unwrap();
        counts.push(r.tasks_lowered);
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}
