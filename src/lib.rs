//! # crossmesh
//!
//! A from-scratch Rust reproduction of *On Optimizing the Communication of
//! Model Parallelism* (MLSys 2023): cross-mesh resharding for combined
//! intra-operator + inter-operator model parallelism, plus the
//! overlapping-friendly eager-1F1B pipeline schedule — evaluated on a
//! deterministic flow-level cluster simulator instead of a GPU testbed.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`netsim`] — discrete-event flow-level cluster network simulator.
//! * [`mesh`] — device meshes, sharding specs, layouts, unit-task
//!   decomposition of a cross-mesh resharding task.
//! * [`collectives`] — communication strategies (send/recv, local/global
//!   all-gather, chunked ring broadcast) and their cost models.
//! * [`core`] — the resharding planner: load balancing and scheduling of
//!   unit communication tasks.
//! * [`check`] — static analysis: the plan/schedule verifier, the bounded
//!   model checker for runtime dataflow programs, and the determinism
//!   lint (`crossmesh-lint`), all runnable without executing a plan.
//! * [`runtime`] — wall-clock multi-threaded execution backend: runs
//!   lowered task graphs for real (one OS thread trio per device, byte
//!   payloads over channels or TCP loopback) behind the same
//!   [`Backend`](netsim::Backend) trait as the simulator.
//! * [`faults`] — deterministic fault injection (host crashes, link
//!   degradation, stragglers, flow drops) and fault-tolerant recovery:
//!   sender failover via `Plan::repair` plus degradation reporting, with
//!   one seeded schedule driving both the simulator and the runtime.
//! * [`pipeline`] — GPipe / 1F1B / eager-1F1B schedules, overlap modes,
//!   backward weight delaying.
//! * [`obs`] — structured tracing facade, sharded metrics registry, and
//!   the unified Chrome/Perfetto timeline export shared by both backends.
//! * [`models`] — GPT-3-like and U-Transformer workload models and the AWS
//!   p3.8xlarge cluster preset used in the paper's evaluation.
//! * [`moe`] — MoE all-to-all: seeded token-to-expert routing,
//!   dispatch/combine unit-task decomposition over a destination-major
//!   byte space, and a byte-exact expert-shard data plane.
//! * [`autoshard`] — sharding-spec search for stage-boundary tensors (the
//!   "auto" half of the paper's `(auto, auto, 2)` configurations).
//! * [`serve`] — the multi-tenant resharding daemon: per-tenant
//!   token-bucket admission control, a shared cross-tenant plan cache,
//!   and a length-prefixed TCP request protocol with graceful drain.
//!
//! # Quickstart
//!
//! ```
//! use crossmesh::mesh::{DeviceMesh, ShardingSpec};
//! use crossmesh::core::{Planner, ReshardingTask, EnsemblePlanner};
//! use crossmesh::netsim::{ClusterSpec, LinkParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two hosts x 4 GPUs; meshes split host-wise.
//! let cluster = ClusterSpec::homogeneous(2, 4, LinkParams::new(100e9, 1.25e9));
//! let src = DeviceMesh::from_cluster_hosts(&cluster, 0..1, "src")?;
//! let dst = DeviceMesh::from_cluster_hosts(&cluster, 1..2, "dst")?;
//! let task = ReshardingTask::new(
//!     src,
//!     "S0R".parse::<ShardingSpec>()?,
//!     dst,
//!     "RS0".parse::<ShardingSpec>()?,
//!     &[1024, 1024],
//!     4, // bytes per element
//! )?;
//! let plan = EnsemblePlanner::default().plan(&task);
//! let report = plan.execute(&cluster)?;
//! println!("resharding took {:.3} ms", report.simulated_seconds * 1e3);
//! # Ok(())
//! # }
//! ```

pub use crossmesh_autoshard as autoshard;
pub use crossmesh_check as check;
pub use crossmesh_collectives as collectives;
pub use crossmesh_core as core;
pub use crossmesh_faults as faults;
pub use crossmesh_hb as hb;
pub use crossmesh_mesh as mesh;
pub use crossmesh_models as models;
pub use crossmesh_moe as moe;
pub use crossmesh_netsim as netsim;
pub use crossmesh_obs as obs;
pub use crossmesh_pipeline as pipeline;
pub use crossmesh_runtime as runtime;
pub use crossmesh_serve as serve;
