//! Quickstart: plan and simulate one cross-mesh resharding task.
//!
//! A `(1024, 1024, 512)` fp32 tensor is sharded as `R S^0 R` on a 2×4
//! source mesh and must arrive as `S^0 R R` on a 2×4 destination mesh
//! (case 3 of the paper's Table 2). We compare the paper's strategies and
//! print what the planner decided.
//!
//! Run with: `cargo run --release --example quickstart`

use crossmesh::core::{
    EnsemblePlanner, LoadBalancePlanner, Planner, PlannerConfig, ReshardingTask, Strategy,
    StrategyChoice,
};
use crossmesh::mesh::DeviceMesh;
use crossmesh::models::presets;
use crossmesh::models::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four p3.8xlarge-class hosts: hosts 0-1 hold the source mesh,
    // hosts 2-3 the destination mesh.
    let cluster = presets::aws_p3_8xlarge(4, Precision::Fp32);
    let src = DeviceMesh::from_cluster(&cluster, 0, (2, 4), "src")?;
    let dst = DeviceMesh::from_cluster(&cluster, 2, (2, 4), "dst")?;

    let task = ReshardingTask::new(
        src,
        "RS0R".parse()?,
        dst,
        "S0RR".parse()?,
        &[1024, 1024, 512],
        4,
    )?;
    println!("task: {task}");
    println!(
        "tensor: {} MB in {} unit communication tasks\n",
        task.total_bytes() / (1 << 20),
        task.units().len()
    );

    // Baselines: P2P send/recv and the Alpa-style all-gather, both with
    // greedy load balancing.
    let params = presets::p3_cost_params();
    for (name, choice) in [
        ("send/recv ", StrategyChoice::Fixed(Strategy::SendRecv)),
        ("alpa      ", StrategyChoice::AlpaAuto),
    ] {
        let planner = LoadBalancePlanner::new(PlannerConfig::new(params).with_strategy(choice));
        let report = planner.plan(&task).execute(&cluster)?;
        println!(
            "{name}  {:7.3}s   ({:.2} GB crossed host NICs)",
            report.simulated_seconds,
            report.cross_host_bytes / 1e9
        );
    }

    // Ours: chunked ring broadcast + the DFS/randomized-greedy ensemble.
    let planner = EnsemblePlanner::new(PlannerConfig::new(params));
    let plan = planner.plan(&task);
    let report = plan.execute(&cluster)?;
    println!(
        "ours        {:7.3}s   ({:.2} GB crossed host NICs)",
        report.simulated_seconds,
        report.cross_host_bytes / 1e9
    );
    println!(
        "\nanalytic estimate {:.3}s, bandwidth lower bound {:.3}s",
        plan.estimate(),
        plan.lower_bound()
    );
    println!("\nschedule (unit -> sender host, strategy):");
    for a in plan.assignments() {
        let unit = &plan.task().units()[a.unit];
        println!(
            "  unit {:2} slice {:26} {} -> {} receivers via {}",
            a.unit,
            unit.slice.to_string(),
            a.sender_host,
            unit.receivers.len(),
            a.strategy,
        );
    }
    Ok(())
}
