//! End-to-end GPT-2.6B pipeline training (Table 3, GPT case1) under the
//! paper's five communication configurations, on a simulated 2-node AWS
//! p3.8xlarge cluster.
//!
//! Run with: `cargo run --release --example gpt_training`

use crossmesh::core::{
    EnsemblePlanner, LoadBalancePlanner, Planner, PlannerConfig, Strategy, StrategyChoice,
};
use crossmesh::models::gpt::GptConfig;
use crossmesh::models::{presets, Precision};
use crossmesh::pipeline::{simulate, CommMode, PipelineConfig, ScheduleKind, WeightDelay};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = presets::aws_p3_8xlarge(2, Precision::Fp16);
    let config = GptConfig::case1();
    println!(
        "GPT: {} layers, hidden {}, batch {}, {} microbatches, {:.1}B params, parallel {}",
        config.num_layers,
        config.hidden,
        config.global_batch,
        config.num_microbatches,
        config.num_params() as f64 / 1e9,
        config.parallel,
    );
    let job = config.build(&cluster)?;
    println!(
        "boundary tensor per microbatch: {} MB\n",
        job.graph.edges()[0].forward.total_bytes() / (1 << 20)
    );

    let params = presets::p3_cost_params();
    let variants: Vec<(&str, Box<dyn Planner>, ScheduleKind, CommMode)> = vec![
        (
            "send_recv (sync 1F1B)",
            Box::new(LoadBalancePlanner::new(
                PlannerConfig::new(params).with_strategy(StrategyChoice::Fixed(Strategy::SendRecv)),
            )),
            ScheduleKind::OneFOneB,
            CommMode::Synchronous,
        ),
        (
            "alpa (sync 1F1B)",
            Box::new(LoadBalancePlanner::new(
                PlannerConfig::new(params).with_strategy(StrategyChoice::AlpaAuto),
            )),
            ScheduleKind::OneFOneB,
            CommMode::Synchronous,
        ),
        (
            "broadcast (sync 1F1B)",
            Box::new(EnsemblePlanner::new(PlannerConfig::new(params))),
            ScheduleKind::OneFOneB,
            CommMode::Synchronous,
        ),
        (
            "ours (eager-1F1B)",
            Box::new(EnsemblePlanner::new(PlannerConfig::new(params))),
            ScheduleKind::Eager1F1B,
            CommMode::Overlapped,
        ),
        (
            "signal upper bound",
            Box::new(EnsemblePlanner::new(PlannerConfig::new(params))),
            ScheduleKind::OneFOneB,
            CommMode::Signal,
        ),
    ];

    println!(
        "{:<24} {:>10} {:>12} {:>14}",
        "variant", "iteration", "TFLOPS", "peak mem/GPU"
    );
    for (name, planner, schedule, comm) in variants {
        let report = simulate(
            &job.graph,
            &cluster,
            planner.as_ref(),
            &PipelineConfig {
                schedule,
                comm,
                weight_delay: WeightDelay::None,
            },
        )?;
        println!(
            "{:<24} {:>9.2}s {:>12.1} {:>11.2} GB",
            name,
            report.iteration_seconds,
            job.aggregate_tflops(report.iteration_seconds),
            report.peak_memory_bytes[0] / 1e9,
        );
    }
    Ok(())
}
