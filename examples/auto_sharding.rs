//! Choosing boundary shardings automatically (the "auto" in Table 3's
//! `(auto, auto, 2)` config): enumerate every valid GSPMD spec pair for a
//! stage-boundary tensor and compare the best pair against common manual
//! choices, with and without a per-device memory cap.
//!
//! Run with: `cargo run --release --example auto_sharding`

use crossmesh::autoshard::{enumerate_specs, search, AutoShardProblem};
use crossmesh::core::{LoadBalancePlanner, Planner, PlannerConfig, ReshardingTask};
use crossmesh::mesh::DeviceMesh;
use crossmesh::models::{presets, Precision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = presets::aws_p3_8xlarge(4, Precision::Fp16);
    let src = DeviceMesh::from_cluster(&cluster, 0, (2, 4), "producer")?;
    let dst = DeviceMesh::from_cluster(&cluster, 2, (2, 4), "consumer")?;
    let shape = vec![64, 1024, 2560]; // a GPT-sized activation microbatch
    let elem = 2u64;
    let params = presets::p3_cost_params();

    println!(
        "boundary tensor {}x{}x{} fp16 ({} MB), meshes 2x4 -> 2x4",
        shape[0],
        shape[1],
        shape[2],
        shape.iter().product::<u64>() * elem / (1 << 20),
    );
    println!(
        "{} candidate specs per side\n",
        enumerate_specs(shape.len()).len()
    );

    // Manual baselines a practitioner might pick.
    let planner = LoadBalancePlanner::new(PlannerConfig::new(params));
    println!("{:<28} {:>12}", "spec pair", "estimate");
    for (s, d) in [("RRR", "RRR"), ("S0RR", "S0RR"), ("S1RR", "S0RR")] {
        let task = ReshardingTask::new(
            src.clone(),
            s.parse()?,
            dst.clone(),
            d.parse()?,
            &shape,
            elem,
        )?;
        println!(
            "{:<28} {:>11.4}s",
            format!("{s} -> {d} (manual)"),
            planner.plan(&task).estimate()
        );
    }

    // Unconstrained search.
    let best = search(
        &AutoShardProblem::new(src.clone(), dst.clone(), shape.clone(), elem),
        &params,
    )?;
    println!(
        "{:<28} {:>11.4}s   <- searched, {} candidates",
        format!("{} -> {} (auto)", best.src_spec, best.dst_spec),
        best.estimated_seconds,
        best.candidates_evaluated,
    );

    // With the consumer pinned (say its operator demands S0RR) and a
    // memory cap that rules out replicated layouts.
    let cap = shape.iter().product::<u64>() * elem / 2;
    let pinned = search(
        &AutoShardProblem::new(src, dst, shape, elem)
            .with_fixed_dst("S0RR".parse()?)
            .with_memory_cap(cap),
        &params,
    )?;
    println!(
        "{:<28} {:>11.4}s   <- dst pinned S0RR, cap {} MB",
        format!("{} -> {} (auto)", pinned.src_spec, pinned.dst_spec),
        pinned.estimated_seconds,
        cap / (1 << 20),
    );
    Ok(())
}
