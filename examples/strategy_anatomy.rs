//! Anatomy of a single unit communication task: how the four §3.1
//! strategies behave as the receiver set grows, and how the broadcast
//! chunk count `K` trades pipeline fill against task-graph size.
//!
//! Reproduces the analytic table of §3.1 (`ABt`, `At`, `2t`, `t(1+A/K)`)
//! by measurement, on a 1 GB slice and a 5-host cluster.
//!
//! Run with: `cargo run --release --example strategy_anatomy`

use crossmesh::collectives::{estimate_unit_task, lower_unit_task, Strategy};
use crossmesh::mesh::{unit_tasks, DeviceMesh, ShardingSpec};
use crossmesh::models::{presets, Precision};
use crossmesh::netsim::{Engine, TaskGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = presets::aws_p3_8xlarge(5, Precision::Fp32);
    let src = DeviceMesh::from_cluster(&cluster, 0, (1, 1), "src")?;
    let dst = DeviceMesh::from_cluster(&cluster, 1, (4, 2), "dst")?;
    // One fully replicated 1 GB tensor -> one unit task to A=4 hosts x B=2.
    let tasks = unit_tasks(
        &src,
        &ShardingSpec::replicated(3),
        &dst,
        &ShardingSpec::replicated(3),
        &[1024, 1024, 256],
        4,
    )?;
    let unit = &tasks[0];
    let params = presets::p3_cost_params();
    let t = unit.bytes as f64 / params.inter_bw;
    println!(
        "unit task: {} MB to {} receivers on {} hosts; t = {:.3}s\n",
        unit.bytes / (1 << 20),
        unit.receivers.len(),
        unit.receiver_hosts().len(),
        t
    );

    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>8}",
        "strategy", "simulated", "estimate", "vs t", "flows"
    );
    for strategy in [
        Strategy::SendRecv,
        Strategy::LocalAllGather,
        Strategy::GlobalAllGather,
        Strategy::broadcast(),
    ] {
        let (sim, flows) = run_one(&cluster, unit, strategy);
        let est = estimate_unit_task(&params, unit, unit.senders[0].1, strategy);
        println!(
            "{:<22} {:>9.3}s {:>9.3}s {:>7.2}x {:>8}",
            strategy.to_string(),
            sim,
            est,
            sim / t,
            flows
        );
    }

    println!("\nbroadcast chunk-count sweep (the paper picks K ~ 100):");
    println!(
        "{:<8} {:>10} {:>8} {:>8}",
        "K", "simulated", "vs t", "flows"
    );
    for k in [1u32, 2, 4, 8, 16, 32, 64, 128, 256] {
        let (sim, flows) = run_one(&cluster, unit, Strategy::Broadcast { chunks: k });
        println!("{:<8} {:>9.3}s {:>7.3}x {:>8}", k, sim, sim / t, flows);
    }
    Ok(())
}

fn run_one(
    cluster: &crossmesh::netsim::ClusterSpec,
    unit: &crossmesh::mesh::UnitTask,
    strategy: Strategy,
) -> (f64, usize) {
    let mut graph = TaskGraph::new();
    let lowered = lower_unit_task(&mut graph, unit, unit.senders[0].0, strategy, &[]);
    let trace = Engine::new(cluster).run(&graph).expect("simulates");
    (trace.interval(lowered.done).finish, graph.len())
}
