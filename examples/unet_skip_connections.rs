//! The workload the paper's introduction motivates: a U-Transformer whose
//! long skip connections make cross-mesh resharding the bottleneck.
//!
//! Shows the per-edge skip tensors, then how much of the communication each
//! schedule hides (1F1B synchronous vs. overlapped vs. eager-1F1B), and the
//! memory price eager-1F1B pays.
//!
//! Run with: `cargo run --release --example unet_skip_connections`

use crossmesh::core::{EnsemblePlanner, PlannerConfig};
use crossmesh::models::utransformer::UTransformerConfig;
use crossmesh::models::{presets, Precision};
use crossmesh::pipeline::{simulate, CommMode, PipelineConfig, ScheduleKind, WeightDelay};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = presets::aws_p3_8xlarge(2, Precision::Fp32);
    let config = UTransformerConfig::case1();
    println!(
        "U-Transformer: {} levels + bottleneck, base channels {}, image {}x{}, \
         batch {}, {:.1}B params",
        config.levels,
        config.base_channels,
        config.image_size,
        config.image_size,
        config.global_batch,
        config.num_params() as f64 / 1e9,
    );
    let job = config.build(&cluster)?;

    println!("\ncross-mesh edges per microbatch (stage `down` -> stage `up`):");
    for (i, edge) in job.graph.edges().iter().enumerate() {
        let kind = if i == 0 { "trunk" } else { "skip " };
        println!(
            "  {kind} edge {i}: {:>7.1} MB, {} unit tasks",
            edge.forward.total_bytes() as f64 / 1e6,
            edge.forward.units().len(),
        );
    }
    let total_mb: u64 = job
        .graph
        .edges()
        .iter()
        .map(|e| e.forward.total_bytes())
        .sum();
    println!(
        "  total {:.1} MB forward (plus the same backward) per microbatch;\n  \
         at 10 Gbps that is {:.0} ms against {:.0} ms of forward compute\n",
        total_mb as f64 / 1e6,
        total_mb as f64 / 1.25e9 * 1e3,
        job.graph.stages()[0].forward_seconds * 1e3,
    );

    let planner = EnsemblePlanner::new(PlannerConfig::new(presets::p3_cost_params()));
    let schedules = [
        (
            "broadcast (sync 1F1B)",
            ScheduleKind::OneFOneB,
            CommMode::Synchronous,
        ),
        (
            "overlap (1F1B)",
            ScheduleKind::OneFOneB,
            CommMode::Overlapped,
        ),
        ("eager-1F1B", ScheduleKind::Eager1F1B, CommMode::Overlapped),
        (
            "signal upper bound",
            ScheduleKind::OneFOneB,
            CommMode::Signal,
        ),
    ];
    println!(
        "{:<24} {:>10} {:>8} {:>22}",
        "schedule", "iteration", "TFLOPS", "live acts (down/up)"
    );
    for (name, schedule, comm) in schedules {
        let report = simulate(
            &job.graph,
            &cluster,
            &planner,
            &PipelineConfig {
                schedule,
                comm,
                weight_delay: WeightDelay::None,
            },
        )?;
        println!(
            "{:<24} {:>9.2}s {:>8.1} {:>12} / {}",
            name,
            report.iteration_seconds,
            job.aggregate_tflops(report.iteration_seconds),
            report.peak_live_activations[0],
            report.peak_live_activations[1],
        );
    }
    Ok(())
}
